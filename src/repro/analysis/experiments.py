"""A small parameter-sweep harness shared by benchmarks and examples.

An experiment is a function ``params -> record`` (a dict of measured
quantities).  :func:`sweep` runs it over a grid of parameter dicts,
collects the records, and tags each with its parameters, so a benchmark
body is just: define the measurement, declare the grid, print the table.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

Record = Dict[str, Any]
Measure = Callable[..., Record]


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """The cartesian product of named parameter axes, as a list of dicts."""
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def sweep(measure: Measure,
          params_list: Iterable[Mapping[str, Any]],
          repeats: int = 1,
          timing: bool = False) -> List[Record]:
    """Run ``measure(**params)`` for every parameter dict.

    With ``repeats > 1`` the parameters gain a ``rep`` axis (seeded
    experiments should mix it into their seed).  With ``timing`` the
    wall-clock seconds are recorded under ``wall_s``.
    """
    records: List[Record] = []
    for params in params_list:
        for rep in range(repeats):
            call = dict(params)
            if repeats > 1:
                call["rep"] = rep
            start = time.perf_counter()
            record = measure(**call)
            elapsed = time.perf_counter() - start
            tagged: Record = dict(call)
            tagged.update(record)
            if timing:
                tagged["wall_s"] = elapsed
            records.append(tagged)
    return records


def summarize(records: Sequence[Record],
              group_by: Sequence[str],
              fields: Sequence[str],
              reducer: Callable[[Sequence[float]], float] = None
              ) -> List[Record]:
    """Group records and average (or custom-reduce) the given fields."""
    if reducer is None:
        def reducer(values):
            return sum(values) / len(values)
    groups: Dict[tuple, List[Record]] = {}
    for record in records:
        key = tuple(record[name] for name in group_by)
        groups.setdefault(key, []).append(record)
    summary: List[Record] = []
    for key, members in groups.items():
        row: Record = dict(zip(group_by, key))
        for field in fields:
            values = [member[field] for member in members
                      if member.get(field) is not None]
            row[field] = reducer(values) if values else None
        summary.append(row)
    return summary
