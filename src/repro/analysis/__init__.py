"""Experiment harness, theoretical bound calculators, table rendering."""

from .experiments import grid, summarize, sweep
from .rounds import (
    defective_3coloring_threshold,
    lemma_44_factor,
    lemma_a1_factor,
    substituted_13_rounds,
    theorem_11_rounds,
    theorem_12_rounds,
    theorem_13_rounds,
    theorem_14_round_factor,
    theorem_15_rounds,
)
from .crossover import (
    crossover_exponent,
    crossover_table,
    crossover_theta,
    theorem_15_beats_13,
)
from .report import build_report, collect_result_files, write_report
from .tables import format_value, render_records, render_table

__all__ = [
    "build_report",
    "collect_result_files",
    "crossover_exponent",
    "crossover_table",
    "crossover_theta",
    "defective_3coloring_threshold",
    "theorem_15_beats_13",
    "write_report",
    "format_value",
    "grid",
    "lemma_44_factor",
    "lemma_a1_factor",
    "render_records",
    "render_table",
    "substituted_13_rounds",
    "summarize",
    "sweep",
    "theorem_11_rounds",
    "theorem_12_rounds",
    "theorem_13_rounds",
    "theorem_14_round_factor",
    "theorem_15_rounds",
]
