"""Aggregate benchmark result tables into one report.

The benchmarks write their tables under ``benchmarks/results/``; this
module stitches them into a single markdown document so a full
evaluation run ends with one reviewable artifact.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional

HEADER = (
    "# Benchmark report\n\n"
    "Generated from benchmarks/results/*.txt "
    "(run `pytest benchmarks/ --benchmark-only` to refresh).\n"
)


def collect_result_files(results_dir: pathlib.Path) -> List[pathlib.Path]:
    """The result tables, in experiment order (E1, E2, ... E10a, ...)."""
    def sort_key(path: pathlib.Path):
        stem = path.stem  # e.g. "E10a_linial"
        head = stem.split("_", 1)[0]  # "E10a"
        digits = "".join(ch for ch in head if ch.isdigit())
        suffix = "".join(ch for ch in head if ch.isalpha() and ch != "E")
        return (int(digits) if digits else 0, suffix, stem)

    return sorted(results_dir.glob("E*.txt"), key=sort_key)


def build_report(results_dir: pathlib.Path) -> str:
    """Markdown report with every table in a fenced block."""
    sections = [HEADER]
    for path in collect_result_files(results_dir):
        body = path.read_text().rstrip()
        title, _, rest = body.partition("\n")
        sections.append(f"## {path.stem}\n\n{title}\n\n```\n{rest}\n```\n")
    if len(sections) == 1:
        sections.append(
            "\n*(no result files found -- run the benchmark suite first)*\n"
        )
    return "\n".join(sections)


def write_report(results_dir: pathlib.Path,
                 output: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Write the aggregated report; returns the output path."""
    if output is None:
        output = results_dir / "REPORT.md"
    output.write_text(build_report(results_dir))
    return output
