"""Lemma 4.5: color space reduction for list arbdefective instances.

``P_A(S, C)`` reduces to one list *defective* instance over ``p`` color
subspaces (each node picks the subspace it will draw its final color
from) followed by one ``P_A(S / sigma, ceil(C / p))`` instance on the
same-subspace subgraph with colors renumbered inside their subspace:

    ``T_A(S, C) <= T_D(sigma, p) + T_A(S / sigma, ceil(C / p))``.

The subspace-choice defects follow Eq. (19) with the same floor-instead-
of-ceiling fix as :mod:`repro.core.color_space_reduction` (the ceiling
version of the paper does not satisfy its own residual-slack line):

    ``d_{v,i} = floor(sigma * deg(v) * W_{v,i} / W_v)``

gives ``sum_i (d_{v,i} + 1) > sigma * deg(v)`` (a ``P_D(sigma, p)``
instance) and ``W_{v,i} >= d_{v,i} * W_v / (sigma * deg(v)) >
(S / sigma) * d_{v,i}``, the residual slack the recursion needs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from ..coloring.instance import ArbdefectiveInstance, ListDefectiveInstance
from ..coloring.result import ColoringResult
from ..sim.errors import AlgorithmFailure, InfeasibleInstanceError
from ..sim.metrics import CostLedger, ensure_ledger

Node = Hashable
Color = int

#: A P_D solver: (instance, ledger) -> ColoringResult (no orientation).
DefectiveSolver = Callable[[ListDefectiveInstance, CostLedger], ColoringResult]
#: A P_A solver for the residual: (instance, ledger) -> ColoringResult.
ResidualSolver = Callable[[ArbdefectiveInstance, CostLedger], ColoringResult]


def build_subspace_instance(instance: ArbdefectiveInstance,
                            p: int,
                            sigma: float
                            ) -> Tuple[ListDefectiveInstance, int]:
    """The ``P_D(sigma, p)`` subspace-choice instance and the block size."""
    if p < 1:
        raise InfeasibleInstanceError(None, "need at least one subspace")
    block_size = math.ceil(instance.color_space_size / p)
    lists: Dict[Node, Tuple[int, ...]] = {}
    defects: Dict[Node, Dict[int, int]] = {}
    for node in instance.network:
        weights: Dict[int, int] = {}
        for color in instance.lists[node]:
            block = color // block_size
            weights[block] = weights.get(block, 0) + (
                instance.defects[node][color] + 1
            )
        total = instance.weight(node)
        degree = instance.network.degree(node)
        blocks = tuple(sorted(weights))
        lists[node] = blocks
        defects[node] = {
            block: int(sigma * degree * weights[block] / total)  # floor
            for block in blocks
        }
    return (
        ListDefectiveInstance(instance.network, lists, defects, p),
        block_size,
    )


def build_residual_instance(instance: ArbdefectiveInstance,
                            chosen_block: Mapping[Node, int],
                            block_size: int) -> ArbdefectiveInstance:
    """The same-subspace residual with colors renumbered into the block."""
    network = instance.network
    keep_edges = [
        (u, v)
        for u, v in network.edges()
        if chosen_block[u] == chosen_block[v]
    ]
    adjacency: Dict[Node, list] = {node: [] for node in network}
    for u, v in keep_edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    from ..sim.network import Network

    sub_network = Network(adjacency)
    lists = {
        node: tuple(
            color - chosen_block[node] * block_size
            for color in instance.lists[node]
            if color // block_size == chosen_block[node]
        )
        for node in network
    }
    defects = {
        node: {
            color - chosen_block[node] * block_size:
                instance.defects[node][color]
            for color in instance.lists[node]
            if color // block_size == chosen_block[node]
        }
        for node in network
    }
    return ArbdefectiveInstance(sub_network, lists, defects, block_size)


def subspace_reduced_arbdefective(instance: ArbdefectiveInstance,
                                  p: int,
                                  sigma: float,
                                  defective_solver: DefectiveSolver,
                                  residual_solver: ResidualSolver,
                                  ledger: Optional[CostLedger] = None,
                                  check: bool = True) -> ColoringResult:
    """Lemma 4.5: solve ``P_A(S, C)`` via subspace choice plus recursion.

    ``defective_solver`` handles the ``P_D(sigma, p)`` choice instance;
    ``residual_solver`` handles the combined same-subspace
    ``P_A(S/sigma, ceil(C/p))`` instance.  ``S`` (checked when ``check``)
    must exceed ``sigma``.
    """
    ledger = ensure_ledger(ledger)
    if check:
        for node in instance.network:
            if instance.weight(node) <= sigma * instance.network.degree(node):
                raise InfeasibleInstanceError(
                    node,
                    f"Lemma 4.5 needs slack > sigma = {sigma}: weight "
                    f"{instance.weight(node)} <= "
                    f"{sigma} * deg {instance.network.degree(node)}",
                )
    with ledger.phase("subspace-choice"):
        choice_instance, block_size = build_subspace_instance(
            instance, p, sigma
        )
        choice = defective_solver(choice_instance, ledger)
        residual = build_residual_instance(
            instance, choice.colors, block_size
        )
        result = residual_solver(residual, ledger)
    colors = {
        node: result.colors[node] + choice.colors[node] * block_size
        for node in instance.network
    }
    orientation = result.orientation or {}
    for node in instance.network:
        if colors[node] not in instance.lists[node]:
            raise AlgorithmFailure(
                f"node {node!r}: subspace reduction produced color "
                f"{colors[node]} outside the original list"
            )
    return ColoringResult(
        colors=colors, orientation=orientation, ledger=ledger
    )
