"""Slack reduction: Lemma 4.4 and Lemma A.1.

Both lemmas trade communication rounds for slack: an instance with little
slack is partitioned -- via the defective coloring of Lemma 3.4 -- into
O(mu^2) groups of relative degree ``1/mu``, and the groups are colored
sequentially by a solver for high-slack instances.

* **Lemma 4.4** (slack > 2): with ``epsilon = 1/mu`` every class subgraph
  has degree at most ``deg(v)/mu`` while the residual weight stays above
  ``deg(v)``, so each class is a ``P_A(mu, C)`` instance:
  ``T_A(2, C) <= O(mu^2) * T_A(mu, C) + O(log* q)``.
* **Lemma A.1** (slack > 1): with ``epsilon = 1/(2*mu)`` only the nodes
  with at most half their neighbors colored are handled per pass
  (everyone else's uncolored degree has halved), and the pass recurses on
  the leftover graph: ``T_A(1, C) <= O(mu^2 log Delta) * T_A(mu, C) +
  O(log* q)``.

Deviation from the paper: Lemma A.1's proof compares every node's colored
neighbors against the *global* ``Delta/2``; that only bounds the residual
slack for full-degree nodes.  We use the per-node threshold
``deg(v)/2``, for which the same arithmetic goes through verbatim
(``weight' >= deg(v) + 1 - deg~(v) > deg(v)/2 >= mu * deg_{G_j}(v)``),
and which still halves the uncolored degree of every skipped node.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Mapping, Optional

from ..coloring.instance import ArbdefectiveInstance
from ..coloring.result import ColoringResult
from ..graphs.oriented import BidirectedView
from ..sim.congest import BandwidthModel
from ..sim.errors import AlgorithmFailure, InfeasibleInstanceError
from ..sim.metrics import CostLedger, ensure_ledger
from ..substrates.kuhn_defective import kuhn_defective_coloring
from .base_solvers import solve_edgeless
from .partial import PartialColoring

Node = Hashable
Color = int

#: A P_A solver: (instance, initial_colors, q, ledger) -> ColoringResult
#: (colors + orientation).  It is handed instances of slack above ``mu``.
ArbSolver = Callable[
    [ArbdefectiveInstance, Mapping[Node, Color], int, CostLedger],
    ColoringResult,
]


def _check_slack(instance: ArbdefectiveInstance, slack: float,
                 what: str) -> None:
    for node in instance.network:
        degree = instance.network.degree(node)
        if instance.weight(node) <= slack * degree:
            raise InfeasibleInstanceError(
                node,
                f"{what} needs slack > {slack}: weight "
                f"{instance.weight(node)} <= {slack} * deg {degree}",
            )


def _classes(psi: Mapping[Node, Color]) -> Dict[Color, list]:
    groups: Dict[Color, list] = {}
    for node, value in psi.items():
        groups.setdefault(value, []).append(node)
    return {key: groups[key] for key in sorted(groups)}


def _check_partition(network, psi: Mapping[Node, Color],
                     epsilon: float) -> None:
    """A supplied partition must meet the Lemma 3.4 guarantee."""
    for node in network:
        conflicts = sum(
            1 for neighbor in network.neighbors(node)
            if psi[neighbor] == psi[node]
        )
        if conflicts > epsilon * network.degree(node):
            raise InfeasibleInstanceError(
                node,
                f"supplied partition has {conflicts} same-class neighbors"
                f" > eps * deg = {epsilon * network.degree(node):.2f}",
            )


def slack_reduction(instance: ArbdefectiveInstance,
                    initial_colors: Mapping[Node, Color],
                    q: int,
                    mu: float,
                    inner_solver: ArbSolver,
                    ledger: Optional[CostLedger] = None,
                    bandwidth: Optional[BandwidthModel] = None,
                    check: bool = True,
                    partition: Optional[Mapping[Node, Color]] = None
                    ) -> ColoringResult:
    """Lemma 4.4: solve a slack-2 ``P_A`` instance via slack-``mu`` calls.

    ``partition`` optionally supplies a precomputed defective coloring
    with at most ``deg(v) / mu`` same-class neighbors per node (validated;
    e.g. from :func:`repro.substrates.greedy.lovasz_defective_partition`);
    by default the Lemma 3.4 coloring is computed here.
    """
    ledger = ensure_ledger(ledger)
    if check:
        _check_slack(instance, 2.0, "Lemma 4.4")
    network = instance.network
    with ledger.phase("slack-reduction-4.4"):
        if partition is not None:
            _check_partition(network, partition, 1.0 / mu)
            psi = dict(partition)
        else:
            psi, _ = kuhn_defective_coloring(
                BidirectedView(network), initial_colors, q, alpha=1.0 / mu,
                ledger=ledger, bandwidth=bandwidth,
            )
        partial = PartialColoring(instance)
        for _, members in _classes(psi).items():
            sub = partial.residual_instance(members)
            if sub.network.edge_count() == 0:
                # Conflict-free class: pick locally, one announcement.
                trivial = solve_edgeless(sub, ledger)
                partial.commit(trivial.colors, trivial.orientation)
                continue
            for node in sub.network:
                if sub.weight(node) <= mu * sub.network.degree(node):
                    raise AlgorithmFailure(
                        f"node {node!r}: class sub-instance lost its "
                        f"slack-{mu} guarantee (Lemma 4.4 arithmetic)"
                    )
            restricted = {node: initial_colors[node] for node in sub.network}
            result = inner_solver(sub, restricted, q, ledger)
            partial.commit(result.colors, result.orientation)
        partial.require_complete("Lemma 4.4")
    return ColoringResult(
        colors=partial.colors,
        orientation=partial.orientation,
        ledger=ledger,
    )


def slack_reduction_full(instance: ArbdefectiveInstance,
                         initial_colors: Mapping[Node, Color],
                         q: int,
                         mu: float,
                         inner_solver: ArbSolver,
                         ledger: Optional[CostLedger] = None,
                         bandwidth: Optional[BandwidthModel] = None,
                         check: bool = True,
                         partitioner=None) -> ColoringResult:
    """Lemma A.1: solve any slack-1 ``P_A`` instance via slack-``mu`` calls.

    Runs O(log Delta) passes; in each pass the defective partition is
    recomputed on the still-uncolored subgraph and only the nodes with at
    most half of their (current) neighbors colored participate, which
    halves the uncolored degree of everyone else.

    ``partitioner`` optionally maps a subnetwork to a defective coloring
    with at most ``deg(v) / (2 mu)`` same-class neighbors (validated);
    by default the Lemma 3.4 coloring is computed each pass.
    """
    ledger = ensure_ledger(ledger)
    if check:
        _check_slack(instance, 1.0, "Lemma A.1")
    partial = PartialColoring(instance)
    max_passes = max(1, math.ceil(
        math.log2(max(2, instance.network.raw_max_degree()))
    )) + 2
    with ledger.phase("slack-reduction-A.1"):
        for _ in range(max_passes):
            uncolored = partial.uncolored()
            if not uncolored:
                break
            current = partial.residual_instance(uncolored)
            network = current.network
            restricted = {node: initial_colors[node] for node in network}
            if partitioner is not None:
                psi = partitioner(network)
                _check_partition(network, psi, 1.0 / (2.0 * mu))
                ledger.charge_round()
            else:
                psi, _ = kuhn_defective_coloring(
                    BidirectedView(network), restricted, q,
                    alpha=1.0 / (2.0 * mu),
                    ledger=ledger, bandwidth=bandwidth,
                )
            degree_at_pass_start = {
                node: network.degree(node) for node in network
            }
            colored_since = {node: 0 for node in network}
            for _, members in _classes(psi).items():
                eligible = [
                    node for node in members
                    if not partial.is_colored(node)
                    and colored_since[node]
                    <= degree_at_pass_start[node] / 2.0
                ]
                if not eligible:
                    continue
                sub = partial.residual_instance(eligible)
                if sub.network.edge_count() == 0:
                    trivial = solve_edgeless(sub, ledger)
                    partial.commit(trivial.colors, trivial.orientation)
                    for node in trivial.colors:
                        for neighbor in network.neighbors(node):
                            if neighbor in colored_since:
                                colored_since[neighbor] += 1
                    continue
                for node in sub.network:
                    if sub.weight(node) <= mu * sub.network.degree(node):
                        raise AlgorithmFailure(
                            f"node {node!r}: H_j sub-instance lost its "
                            f"slack-{mu} guarantee (Lemma A.1 arithmetic)"
                        )
                sub_initial = {
                    node: initial_colors[node] for node in sub.network
                }
                result = inner_solver(sub, sub_initial, q, ledger)
                partial.commit(result.colors, result.orientation)
                for node, color in result.colors.items():
                    for neighbor in network.neighbors(node):
                        if neighbor in colored_since:
                            colored_since[neighbor] += 1
        partial.require_complete("Lemma A.1")
    return ColoringResult(
        colors=partial.colors,
        orientation=partial.orientation,
        ledger=ledger,
    )
