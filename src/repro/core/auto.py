"""Automatic parameter selection for the Two-Sweep family.

Theorem 1.1 leaves two knobs open: the sub-list size ``p`` and the slack
factor ``epsilon``.  Their interaction is concrete in this codebase --
``epsilon = 0`` costs ``2q + 1`` rounds, while ``epsilon > 0`` costs the
Lemma 3.4 schedule (whose length *and* final palette are computable
up front from :func:`repro.substrates.cover_free.defective_schedule`)
plus two sweeps over that palette.  ``plan_oldc`` enumerates a candidate
grid, prices each feasible plan exactly, and ``solve_oldc_auto`` runs the
cheapest one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..coloring.defects import feasible_p_values
from ..coloring.instance import OLDCInstance
from ..coloring.result import ColoringResult
from ..sim.congest import BandwidthModel
from ..sim.errors import InfeasibleInstanceError
from ..sim.metrics import CostLedger, ensure_ledger
from ..substrates.cover_free import defective_schedule
from .fast_two_sweep import fast_two_sweep

#: Epsilon grid probed by the planner (0 = plain Two-Sweep).
EPSILON_GRID = (0.0, 0.25, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class OLDCPlan:
    """A priced execution plan for one (p, epsilon) choice."""

    p: int
    epsilon: float
    estimated_rounds: int
    #: The proper-coloring size the sweeps will iterate over.
    sweep_palette: int

    def describe(self) -> str:
        kind = "two-sweep" if self.epsilon == 0.0 else "fast-two-sweep"
        return (
            f"{kind}(p={self.p}, eps={self.epsilon}) ~ "
            f"{self.estimated_rounds} rounds over {self.sweep_palette} "
            f"colors"
        )


def _estimate(q: int, p: int, epsilon: float) -> OLDCPlan:
    if epsilon == 0.0:
        return OLDCPlan(p, 0.0, 2 * q + 1, q)
    schedule = defective_schedule(q, epsilon / p)
    palette = schedule[-1].palette_size if schedule else q
    # Algorithm 2 line 1 falls back to the plain sweep when q is small
    # (mirror fast_two_sweep's branch exactly so the estimate is honest).
    if q <= (p / epsilon) ** 2 + _log_star(q):
        return OLDCPlan(p, epsilon, 2 * q + 1, q)
    rounds = (len(schedule) + 1) + (2 * palette + 1)
    return OLDCPlan(p, epsilon, rounds, palette)


def _log_star(x: float) -> int:
    count = 0
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return count


def plan_oldc(instance: OLDCInstance, q: int,
              epsilon_grid=EPSILON_GRID,
              max_p_candidates: int = 4) -> List[OLDCPlan]:
    """All feasible plans, cheapest first (empty if nothing is feasible).

    For every epsilon in the grid, the feasible integer ``p`` values are
    computed from Eq. (7); only the smallest few are priced (larger ``p``
    never helps rounds and only grows messages).
    """
    plans: List[OLDCPlan] = []
    for epsilon in epsilon_grid:
        for p in feasible_p_values(instance, epsilon)[:max_p_candidates]:
            plans.append(_estimate(q, p, epsilon))
    plans.sort(key=lambda plan: (plan.estimated_rounds, plan.p))
    return plans


def solve_oldc_auto(instance: OLDCInstance,
                    initial_colors: Mapping, q: int,
                    ledger: Optional[CostLedger] = None,
                    bandwidth: Optional[BandwidthModel] = None
                    ) -> ColoringResult:
    """Solve an OLDC instance with automatically chosen (p, epsilon).

    Raises :class:`InfeasibleInstanceError` when no (p, epsilon) in the
    planner's grid satisfies Eq. (7) -- the instance is outside the
    Two-Sweep family's reach.  The chosen plan is recorded in the
    result's ``stats``.
    """
    ledger = ensure_ledger(ledger)
    plans = plan_oldc(instance, q)
    if not plans:
        worst = min(
            instance.lists,
            key=lambda node: (
                instance.weight(node) / instance.beta(node)
            ),
        )
        raise InfeasibleInstanceError(
            worst, "no feasible (p, epsilon) for the Two-Sweep family"
        )
    best = plans[0]
    result = fast_two_sweep(
        instance, initial_colors, q, best.p, best.epsilon,
        ledger=ledger, bandwidth=bandwidth,
    )
    result.stats = {
        "p": best.p,
        "epsilon": best.epsilon,
        "estimated_rounds": best.estimated_rounds,
    }
    return result
