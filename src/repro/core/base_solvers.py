"""Base-case solvers for the Section 4 recursion.

The recursion of Theorem 1.5 bottoms out in small list arbdefective
instances (tiny color space, tiny degree, or exhausted depth budget).
Two universal facts make a simple and always-correct base possible:

* any ``P_A`` instance in which a node has a *free color*
  (``d_v(x) >= deg(v)``, counting uncolored neighbors) lets that node
  commit with zero coordination -- it can afford every neighbor as a
  monochromatic out-neighbor;
* any ``P_A`` instance with slack above 1 is solvable by the greedy sweep
  of :func:`repro.substrates.greedy.greedy_arbdefective_sweep` in O(q)
  rounds, and Linial shrinks ``q`` to O(Delta_sub^2) first.

``solve_arbdefective_base`` composes the two: peel free-color nodes
(one announcement round per peel wave), then Linial + greedy sweep on the
rest.  Peeling preserves slack: a colored neighbor reduces a node's
weight by at most one and its uncolored degree by exactly one.

Orientation convention: every monochromatic edge points from the
later-colored endpoint to the earlier-colored one (peel waves in order,
then sweep nodes; ties inside a peel wave break by node id).  A peeled
node's original defect covers *all* its monochromatic neighbors
(``d_v(x) >= #colored-mono + #uncolored >= #mono``), and a sweep node's
residual defect already accounts for the peeled neighbors it points to.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..coloring.instance import ArbdefectiveInstance
from ..coloring.result import ColoringResult
from ..sim.congest import BandwidthModel
from ..sim.errors import InfeasibleInstanceError
from ..sim.metrics import CostLedger, ensure_ledger
from ..substrates.greedy import greedy_arbdefective_sweep
from ..substrates.linial import linial_coloring

Node = Hashable
Color = int


def solve_edgeless(instance: ArbdefectiveInstance,
                   ledger: CostLedger) -> ColoringResult:
    """Solve an instance whose graph has no edges: pick locally, announce.

    Every node takes the color with the largest defect (any non-negative
    defect works -- there is nobody to conflict with); one round is
    charged for the announcement to neighbors in the *original* graph,
    which the caller's bookkeeping consumes.
    """
    colors: Dict[Node, Color] = {}
    for node in instance.network:
        if not instance.lists[node]:
            raise InfeasibleInstanceError(node, "empty color list")
        colors[node] = max(
            instance.lists[node],
            key=lambda color: (instance.defects[node][color], -color),
        )
    if colors:
        ledger.charge_round(messages=0)
    orientation = {node: () for node in instance.network}
    return ColoringResult(colors=colors, orientation=orientation,
                          ledger=ledger)


def peel_free_color_nodes(instance: ArbdefectiveInstance,
                          ledger: CostLedger
                          ) -> Tuple[Dict[Node, Color],
                                     Dict[Node, Tuple[Node, ...]],
                                     ArbdefectiveInstance]:
    """Iteratively color every node that has a free color.

    Returns ``(colors, orientation, residual_instance)``.  Each peel wave
    costs one communication round (the announcement); the residual
    instance has the peeled nodes removed, colored same-color neighbors
    subtracted from defects, and exhausted colors dropped.
    """
    colors: Dict[Node, Color] = {}
    orientation: Dict[Node, Tuple[Node, ...]] = {}
    network = instance.network
    lists = {node: list(instance.lists[node]) for node in network}
    defects = {node: dict(instance.defects[node]) for node in network}
    uncolored_degree = {node: network.degree(node) for node in network}
    remaining = set(network.nodes)

    while True:
        wave: List[Tuple[Node, Color]] = []
        for node in remaining:
            for color in lists[node]:
                if defects[node][color] >= uncolored_degree[node]:
                    wave.append((node, color))
                    break
        if not wave:
            break
        ledger.charge_round(
            messages=sum(network.degree(node) for node, _ in wave)
        )
        wave_colors = dict(wave)
        for node, color in wave:
            colors[node] = color
            remaining.discard(node)
        for node, color in wave:
            earlier = [
                neighbor
                for neighbor in network.neighbors(node)
                if colors.get(neighbor) == color and neighbor not in wave_colors
            ]
            same_wave = [
                neighbor
                for neighbor in network.neighbors(node)
                if wave_colors.get(neighbor) == color
                and repr(neighbor) < repr(node)
            ]
            orientation[node] = tuple(earlier + same_wave)
        for node, color in wave:
            for neighbor in network.neighbors(node):
                if neighbor in remaining:
                    uncolored_degree[neighbor] -= 1
                    if color in defects[neighbor]:
                        defects[neighbor][color] -= 1
                        if defects[neighbor][color] < 0:
                            lists[neighbor].remove(color)
                            del defects[neighbor][color]

    residual = ArbdefectiveInstance(
        network.subgraph(remaining),
        {node: tuple(lists[node]) for node in remaining},
        {node: defects[node] for node in remaining},
        instance.color_space_size,
    )
    return colors, orientation, residual


def solve_arbdefective_base(instance: ArbdefectiveInstance,
                            initial_colors: Mapping[Node, Color],
                            q: int,
                            ledger: Optional[CostLedger] = None,
                            bandwidth: Optional[BandwidthModel] = None,
                            peel: bool = True) -> ColoringResult:
    """Solve any slack-above-1 ``P_A`` instance: peel + Linial + greedy sweep.

    ``initial_colors`` must be a proper ``q``-coloring of the instance's
    graph.  Raises :class:`InfeasibleInstanceError` when some node's
    weight does not exceed its degree (slack at most 1).
    """
    ledger = ensure_ledger(ledger)
    for node in instance.network:
        if instance.weight(node) <= instance.network.degree(node):
            raise InfeasibleInstanceError(
                node,
                f"base solver needs slack > 1: weight "
                f"{instance.weight(node)} <= deg "
                f"{instance.network.degree(node)}",
            )
    with ledger.phase("base-solver"):
        if peel:
            colors, orientation, residual = peel_free_color_nodes(
                instance, ledger
            )
        else:
            colors, orientation = {}, {}
            residual = instance
        if len(residual.network) > 0:
            sub_network = residual.network
            sub_initial = {node: initial_colors[node] for node in sub_network}
            relabeled, q_small = linial_coloring(
                sub_network, sub_initial, q,
                ledger=ledger, bandwidth=bandwidth,
            )
            inner = greedy_arbdefective_sweep(
                residual, relabeled, q_small,
                ledger=ledger, bandwidth=bandwidth, check=False,
            )
            colors.update(inner.colors)
            swept = set(residual.network.nodes)
            for node in swept:
                # Sweep-internal out-edges, plus the peeled same-color
                # neighbors the node's residual defect already paid for.
                cross = tuple(
                    neighbor
                    for neighbor in instance.network.neighbors(node)
                    if neighbor not in swept
                    and colors[neighbor] == colors[node]
                )
                orientation[node] = inner.orientation[node] + cross
    return ColoringResult(colors=colors, orientation=orientation, ledger=ledger)
