"""Lemma 4.6 and Theorem 1.5: recursive coloring for bounded theta.

The dispatcher routes a list arbdefective instance by its slack, exactly
following the proof of Theorem 1.5:

* slack > ``84 * theta * ceil(log Delta)``  -- Lemma 4.6: pick a color
  subspace out of ``p = ceil(sqrt(C))`` via Theorem 1.4 (whose inner
  ``P_A(1, p)`` instances recurse), then recurse on the residual
  ``P_A(2, ceil(C / p))`` instance.  The color space square-roots.
* slack > 2 -- Lemma 4.4 with ``mu = 84 * theta * ceil(log Delta)``
  boosts every class to the slack the Lemma 4.6 path needs.
* slack > 1 -- Lemma A.1 with ``mu = 2`` boosts to slack 2.
* otherwise -- infeasible.

The recursion bottoms out (small color space, small degree, or depth
budget) in :func:`repro.core.base_solvers.solve_arbdefective_base`,
which is universally correct for slack above 1; every sub-instance the
reductions generate keeps slack above 1, so the base case is always
applicable and the implementation is correct at any truncation depth --
the recursion structure only determines the round complexity.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional

from ..coloring.instance import (
    ArbdefectiveInstance,
    ListDefectiveInstance,
)
from ..coloring.result import ColoringResult
from ..coloring.validate import assert_arbdefective, assert_proper_coloring
from ..graphs.identifiers import sequential_ids
from ..sim.congest import BandwidthModel
from ..sim.errors import InfeasibleInstanceError
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from ..substrates.linial import linial_coloring
from .base_solvers import solve_arbdefective_base, solve_edgeless
from .defective_from_arb import defective_from_arbdefective
from .slack_reduction import slack_reduction, slack_reduction_full
from .subspace_choice import subspace_reduced_arbdefective

Node = Hashable
Color = int


def lemma_46_slack(theta: int, max_degree: int) -> float:
    """``84 * theta * ceil(log2 Delta)``: the slack Lemma 4.6 consumes."""
    return 84.0 * max(1, theta) * max(1, math.ceil(
        math.log2(max(2, max_degree))
    ))


class RecursiveArbSolver:
    """Theorem 1.5's recursion with a universal base case.

    Parameters
    ----------
    theta:
        The neighborhood independence bound of the input graph (and hence
        of every subgraph the recursion touches).
    initial_colors, q:
        A proper ``q``-coloring of the *whole* graph (normally Linial's
        O(Delta^2)-coloring); restrictions stay proper on subgraphs.
    base_color_space, base_degree, max_depth:
        Base-case thresholds.  ``force_recursion`` disables the
        color-space / degree shortcuts (depth budget still applies) so
        tests can exercise the full recursion on small inputs.
    """

    def __init__(self, theta: int,
                 initial_colors: Mapping[Node, Color],
                 q: int,
                 ledger: Optional[CostLedger] = None,
                 bandwidth: Optional[BandwidthModel] = None,
                 base_color_space: int = 6,
                 base_degree: int = 4,
                 max_depth: int = 40,
                 force_recursion: bool = False):
        self.theta = max(1, theta)
        self.initial_colors = dict(initial_colors)
        self.q = q
        self.ledger = ensure_ledger(ledger)
        self.bandwidth = bandwidth
        self.base_color_space = base_color_space
        self.base_degree = base_degree
        self.max_depth = max_depth
        self.force_recursion = force_recursion
        #: Dispatch statistics for tests and benchmarks.
        self.stats: Dict[str, int] = {
            "base": 0, "lemma44": 0, "lemmaA1": 0, "lemma46": 0,
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def solve(self, instance: ArbdefectiveInstance,
              depth: int = 0) -> ColoringResult:
        network = instance.network
        if len(network) == 0:
            return ColoringResult(colors={}, orientation={},
                                  ledger=self.ledger)
        if network.edge_count() == 0:
            return solve_edgeless(instance, self.ledger)
        max_degree = network.raw_max_degree()
        color_space = instance.color_space_size
        if depth >= self.max_depth or (
            not self.force_recursion
            and (color_space <= self.base_color_space
                 or max_degree <= self.base_degree)
        ):
            return self._base(instance)
        big = lemma_46_slack(self.theta, max_degree)
        if instance.has_slack(big):
            return self._lemma46(instance, big, depth)
        if instance.has_slack(2.0):
            return self._lemma44(instance, big, depth)
        if instance.has_slack(1.0):
            return self._lemmaA1(instance, depth)
        worst = min(
            (node for node in network if network.degree(node) > 0),
            key=lambda node: instance.weight(node) / network.degree(node),
            default=None,
        )
        raise InfeasibleInstanceError(
            worst, "Theorem 1.5 needs slack above 1"
        )

    # ------------------------------------------------------------------
    # Branches
    # ------------------------------------------------------------------
    def _base(self, instance: ArbdefectiveInstance) -> ColoringResult:
        self.stats["base"] += 1
        restricted = {
            node: self.initial_colors[node] for node in instance.network
        }
        return solve_arbdefective_base(
            instance, restricted, self.q,
            ledger=self.ledger, bandwidth=self.bandwidth,
        )

    def _lemma44(self, instance: ArbdefectiveInstance, big: float,
                 depth: int) -> ColoringResult:
        self.stats["lemma44"] += 1

        def inner(sub, sub_initial, sub_q, ledger):
            return self.solve(sub, depth + 1)

        restricted = {
            node: self.initial_colors[node] for node in instance.network
        }
        return slack_reduction(
            instance, restricted, self.q, mu=big, inner_solver=inner,
            ledger=self.ledger, bandwidth=self.bandwidth, check=False,
        )

    def _lemmaA1(self, instance: ArbdefectiveInstance,
                 depth: int) -> ColoringResult:
        self.stats["lemmaA1"] += 1

        def inner(sub, sub_initial, sub_q, ledger):
            return self.solve(sub, depth + 1)

        restricted = {
            node: self.initial_colors[node] for node in instance.network
        }
        return slack_reduction_full(
            instance, restricted, self.q, mu=2.0, inner_solver=inner,
            ledger=self.ledger, bandwidth=self.bandwidth, check=False,
        )

    def _lemma46(self, instance: ArbdefectiveInstance, big: float,
                 depth: int) -> ColoringResult:
        self.stats["lemma46"] += 1
        color_space = instance.color_space_size
        p = max(2, math.ceil(math.sqrt(color_space)))
        sigma = big / 2.0

        def defective_solver(pd_instance: ListDefectiveInstance,
                             ledger: CostLedger) -> ColoringResult:
            def arb_solver(sub, sub_initial, sub_q, inner_ledger):
                return self.solve(sub, depth + 1)

            restricted = {
                node: self.initial_colors[node]
                for node in pd_instance.network
            }
            return defective_from_arbdefective(
                pd_instance, self.theta, s=1.0, arb_solver=arb_solver,
                initial_colors=restricted, q=self.q,
                ledger=ledger, check=False, validate=False,
            )

        def residual_solver(sub: ArbdefectiveInstance,
                            ledger: CostLedger) -> ColoringResult:
            return self.solve(sub, depth + 1)

        return subspace_reduced_arbdefective(
            instance, p=p, sigma=sigma,
            defective_solver=defective_solver,
            residual_solver=residual_solver,
            ledger=self.ledger, check=False,
        )


# ----------------------------------------------------------------------
# Public entry points (Theorem 1.5)
# ----------------------------------------------------------------------
def theta_recursive_arbdefective(instance: ArbdefectiveInstance,
                                 theta: Optional[int] = None,
                                 ids: Optional[Mapping[Node, int]] = None,
                                 ledger: Optional[CostLedger] = None,
                                 bandwidth: Optional[BandwidthModel] = None,
                                 validate: bool = True,
                                 **solver_kwargs) -> ColoringResult:
    """Theorem 1.5: solve ``P_A(1, C)`` on a bounded-theta graph.

    Computes Linial's O(Delta^2)-coloring from the identifiers first
    (the paper's O(log* n) bootstrap), then runs the recursion.  With
    ``theta=None`` a certified upper bound on the neighborhood
    independence is computed (:func:`repro.graphs.safe_theta`) -- the
    guarantees need an upper bound, never an estimate from below.
    """
    ledger = ensure_ledger(ledger)
    network = instance.network
    if theta is None:
        from ..graphs.independence import safe_theta

        theta = max(1, safe_theta(network))
    if ids is None:
        ids = sequential_ids(network)
    q_ids = max(ids.values()) + 1 if ids else 1
    colors0, q0 = linial_coloring(
        network, ids, q_ids, ledger=ledger, bandwidth=bandwidth
    )
    solver = RecursiveArbSolver(
        theta, colors0, q0, ledger=ledger, bandwidth=bandwidth,
        **solver_kwargs,
    )
    result = solver.solve(instance)
    result.stats = dict(solver.stats)
    if validate:
        assert_arbdefective(instance, result.colors, result.orientation)
    return result


def theta_delta_plus_one_coloring(network: Network,
                                  theta: Optional[int] = None,
                                  ids: Optional[Mapping[Node, int]] = None,
                                  ledger: Optional[CostLedger] = None,
                                  bandwidth: Optional[BandwidthModel] = None,
                                  **solver_kwargs) -> ColoringResult:
    """A proper ``(Delta + 1)``-coloring via Theorem 1.5.

    Every node gets the full palette ``{0..Delta}`` with zero defects --
    a ``P_A(1, Delta + 1)`` instance whose arbdefective solution is
    necessarily a proper coloring.
    """
    ledger = ensure_ledger(ledger)
    palette = tuple(range(network.raw_max_degree() + 1))
    lists = {node: palette for node in network}
    defects = {
        node: {color: 0 for color in palette} for node in network
    }
    instance = ArbdefectiveInstance(network, lists, defects, len(palette))
    result = theta_recursive_arbdefective(
        instance, theta, ids=ids, ledger=ledger, bandwidth=bandwidth,
        validate=False, **solver_kwargs,
    )
    assert_proper_coloring(network, result.colors)
    return result
