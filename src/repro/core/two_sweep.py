"""Algorithm 1: the Two-Sweep list defective coloring algorithm.

This is the paper's base algorithm (Theorem 1.1 with ``epsilon = 0``).
Given an oriented graph with a proper ``q``-coloring and an OLDC instance
satisfying Eq. (2),

    ``sum_{x in L_v} (d_v(x) + 1) > max{p, |L_v| / p} * beta_v``,

two sweeps over the color classes solve the instance in O(q) rounds:

* **Phase I** (colors ascending): node ``v`` picks a sub-list
  ``S_v subseteq L_v`` of at most ``p`` colors maximizing
  ``d_v(x) - k_v(x)``, where ``k_v(x)`` counts out-neighbors *earlier* in
  the sweep whose sub-list contains ``x`` (Lemma 3.1 shows the best such
  sub-list satisfies Eq. (4)).
* **Phase II** (colors descending): ``v`` picks a final color
  ``x in S_v`` with ``k_v(x) + r_v(x) <= d_v(x)``, where ``r_v(x)`` counts
  *later*-sweep out-neighbors already committed to ``x`` (Lemma 3.2 shows
  one exists).

Round layout (1 round per sweep step, plus one initial round in which
nodes forward their initial color, exactly as Theorem 1.1 states):

* round 1: everyone broadcasts its initial color;
* round ``2 + c``: color class ``c`` broadcasts its sub-list ``S_v``;
* round ``q + 2 + (q - 1 - c)``: color class ``c`` announces its final
  color to the neighbors that still need it.

Messages: an initial color (``log q`` bits), a sub-list of at most ``p``
colors (``p log C`` bits), and a final color (``log C`` bits).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..coloring.instance import OLDCInstance
from ..obs.tracer import current_tracer
from ..coloring.result import ColoringResult
from ..sim import arrays
from ..sim.congest import BandwidthModel, LocalModel
from ..sim.errors import (
    AlgorithmFailure,
    InfeasibleInstanceError,
    InstanceError,
)
from ..sim.kernels import (
    KernelRound,
    RoundKernel,
    fanout_totals,
    register_kernel,
)
from ..sim.message import Message, color_bits, intern_broadcast
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol

Node = Hashable
Color = int

_TAG_INITIAL = "initial-color"
_TAG_SUBLIST = "sublist"
_TAG_FINAL = "final-color"


class TwoSweepProgram(NodeProgram):
    """One node's side of Algorithm 1."""

    def __init__(self, node: Node, initial_color: Color, q: int, p: int,
                 color_list: Tuple[Color, ...],
                 defect_fn: Mapping[Color, int],
                 out_neighbors: frozenset,
                 color_space_size: int,
                 trace: Optional[List[dict]] = None):
        self.node = node
        self.initial_color = initial_color
        self.q = q
        self.p = p
        self.color_list = color_list
        self.defect_fn = dict(defect_fn)
        self.out_neighbors = out_neighbors
        self.color_space_size = color_space_size
        self.trace = trace
        # Learned during the run:
        self.neighbor_initial: Dict[Node, Color] = {}
        self.k: Dict[Color, int] = {color: 0 for color in color_list}
        self.r: Dict[Color, int] = {color: 0 for color in color_list}
        self.sublist: Tuple[Color, ...] = ()
        self.final_color: Optional[Color] = None
        #: Elementary color operations performed by this node: one per
        #: received sub-list/final-color entry processed, ``|L| log |L|``
        #: for the Phase I sort, one per Phase II feasibility probe.
        #: Measures the "near-linear in Delta times list size" claim of
        #: Section 1.1 (cf. the exponential local work of [FK23a]).
        self.local_work = 0

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round_number == 1:
            ctx.broadcast(
                _TAG_INITIAL, self.initial_color, bits=color_bits(self.q)
            )
            return
        self._collect(ctx)
        phase1_turn = 2 + self.initial_color
        phase2_turn = self.q + 2 + (self.q - 1 - self.initial_color)
        if ctx.round_number == phase1_turn:
            self._act_phase1(ctx)
        if ctx.round_number == phase2_turn:
            self._act_phase2(ctx)
            ctx.halt()

    def _collect(self, ctx: RoundContext) -> None:
        for sender, payload in ctx.received(_TAG_INITIAL).items():
            self.neighbor_initial[sender] = payload
        for sender, payload in ctx.received(_TAG_SUBLIST).items():
            if sender not in self.out_neighbors:
                continue
            # Only sub-lists of *earlier* out-neighbors feed k_v.
            if self.neighbor_initial[sender] < self.initial_color:
                for color in payload:
                    self.local_work += 1
                    if color in self.k:
                        self.k[color] += 1
        for sender, payload in ctx.received(_TAG_FINAL).items():
            if sender not in self.out_neighbors:
                continue
            if self.neighbor_initial[sender] > self.initial_color:
                self.local_work += 1
                if payload in self.r:
                    self.r[payload] += 1

    # ------------------------------------------------------------------
    # Phase I: pick the sub-list S_v
    # ------------------------------------------------------------------
    def _act_phase1(self, ctx: RoundContext) -> None:
        ranked = sorted(
            self.color_list,
            key=lambda color: (-(self.defect_fn[color] - self.k[color]), color),
        )
        size = len(self.color_list)
        self.local_work += size * max(1, (size - 1).bit_length())
        self.sublist = tuple(ranked[: self.p])
        if self.trace is not None:
            self.trace.append({
                "node": self.node,
                "phase": 1,
                "round": ctx.round_number,
                "sublist": self.sublist,
                "k": dict(self.k),
            })
        ctx.broadcast(
            _TAG_SUBLIST,
            self.sublist,
            bits=len(self.sublist) * color_bits(self.color_space_size),
        )

    # ------------------------------------------------------------------
    # Phase II: commit to a color satisfying Eq. (5)
    # ------------------------------------------------------------------
    def _act_phase2(self, ctx: RoundContext) -> None:
        chosen = None
        for color in sorted(self.sublist):
            self.local_work += 1
            if self.k[color] + self.r[color] <= self.defect_fn[color]:
                chosen = color
                break
        if chosen is None:
            raise AlgorithmFailure(
                f"node {self.node!r}: no color in S_v = {self.sublist} "
                f"satisfies Eq. (5); k={self.k} r={self.r} -- Eq. (2) must "
                f"have been violated"
            )
        self.final_color = chosen
        if self.trace is not None:
            self.trace.append({
                "node": self.node,
                "phase": 2,
                "round": ctx.round_number,
                "color": chosen,
                "k": dict(self.k),
                "r": dict(self.r),
            })
        # Only in-neighbors earlier in the sweep still need the color.
        for neighbor in ctx.neighbors:
            if self.neighbor_initial[neighbor] < self.initial_color:
                ctx.send(
                    neighbor,
                    _TAG_FINAL,
                    chosen,
                    bits=color_bits(self.color_space_size),
                )

    def output(self) -> Optional[Color]:
        return self.final_color


def check_two_sweep_preconditions(instance: OLDCInstance,
                                  initial_colors: Mapping[Node, Color],
                                  q: int, p: int) -> None:
    """Raise unless the inputs satisfy Algorithm 1's requirements."""
    if p < 1:
        raise InstanceError("p must be at least 1")
    for node in instance.graph.nodes:
        color = initial_colors.get(node)
        if color is None or not 0 <= color < q:
            raise InstanceError(
                f"node {node!r}: initial color {color!r} outside 0..{q - 1}"
            )
    for u in instance.graph.nodes:
        for v in instance.graph.out_neighbors(u):
            if initial_colors[u] == initial_colors[v]:
                raise InstanceError(
                    f"initial coloring is not proper: edge {u!r}-{v!r}"
                )
    for node in instance.graph.nodes:
        # Nodes without out-neighbors can never see a conflict; any
        # non-empty list suffices for them (beta_v is floored at 1 in the
        # paper's convention, which would otherwise reject tiny lists).
        if (instance.graph.outdegree(node) == 0
                and instance.list_size(node) > 0):
            continue
        if not instance.satisfies_eq2(p, node):
            raise InfeasibleInstanceError(
                node,
                f"Eq. (2) fails: weight {instance.weight(node)} <= "
                f"max({p}, {instance.list_size(node)}/{p}) * "
                f"beta {instance.beta(node)}",
            )


def two_sweep(instance: OLDCInstance,
              initial_colors: Mapping[Node, Color],
              q: int,
              p: int,
              ledger: Optional[CostLedger] = None,
              bandwidth: Optional[BandwidthModel] = None,
              check: bool = True,
              trace: Optional[List[dict]] = None) -> ColoringResult:
    """Run Algorithm 1 and return the computed OLDC solution.

    Parameters
    ----------
    instance:
        The oriented list defective coloring instance.
    initial_colors:
        A proper coloring with colors ``0..q-1``.
    p:
        The sub-list size parameter of Theorem 1.1.
    check:
        When true (default), validate Eq. (2) and the initial coloring up
        front and raise :class:`InfeasibleInstanceError` /
        :class:`InstanceError` on violations.  With ``check=False`` the
        algorithm runs anyway and raises :class:`AlgorithmFailure` only if
        a node actually gets stuck.
    trace:
        Optional list collecting per-node phase events (used by the
        Figure 1 sweep-mechanics benchmark).
    """
    ledger = ensure_ledger(ledger)
    if check:
        check_two_sweep_preconditions(instance, initial_colors, q, p)
    graph = instance.graph
    programs = {
        node: TwoSweepProgram(
            node=node,
            initial_color=initial_colors[node],
            q=q,
            p=p,
            color_list=instance.lists[node],
            defect_fn=instance.defects[node],
            out_neighbors=frozenset(graph.out_neighbors(node)),
            color_space_size=instance.color_space_size,
            trace=trace,
        )
        for node in graph.nodes
    }
    # Algorithm-level span: instance parameters are logical attributes
    # (identical whichever engine runs the sweep), so traced runs can be
    # grouped by workload; the nested phase span carries the charges.
    tracer = current_tracer()
    scope = (
        tracer.span("algorithm", "two-sweep",
                    nodes=len(programs), q=q, p=p)
        if tracer is not None else nullcontext()
    )
    with scope, ledger.phase("two-sweep"):
        outputs, _ = run_protocol(
            graph.network, programs, bandwidth=bandwidth, ledger=ledger
        )
    work = [program.local_work for program in programs.values()]
    return ColoringResult(
        colors=dict(outputs),
        orientation=None,
        ledger=ledger,
        stats={
            "max_local_work": max(work, default=0),
            "total_local_work": sum(work),
        },
    )


class TwoSweepKernel(RoundKernel):
    """Array-at-a-time Two-Sweep: one column pass per sweep step.

    The round layout makes the population embarrassingly bucketable: at
    most one color class acts per round (Phase I windows ``[2, q + 1]``
    and Phase II windows ``[q + 2, 2q + 1]`` are disjoint), so each step
    touches only that round's deciders while the per-node engines still
    dispatch an ``on_round`` no-op for every waiting node.  Two facts
    make the event-driven rewrite exact:

    * ``k_v`` is *final* at ``v``'s Phase I turn -- an earlier
      out-neighbor of class ``c' < c`` broadcasts its sub-list in round
      ``2 + c'`` and it is ingested no later than round ``2 + c``, so
      the kernel can fold all earlier sub-lists at decision time instead
      of at delivery time;
    * ``r_v`` is final at ``v``'s Phase II turn -- every later
      out-neighbor decided in a strictly earlier round -- so it is
      derived from the finals column on the spot.

    ``local_work`` accrues identically in total (per sub-list entry and
    final received, plus the sort and probe costs), just attributed to
    the owner's turn instead of the delivery rounds.  The last Phase II
    round sends nothing (no neighbor of the minimum present class has a
    smaller initial color), giving the same clean quiescence round as
    the reference engine.

    Declines traces (per-round events cannot be replayed from a bucketed
    pass), mid-run state, non-uniform ``q``/``color_space_size``, and
    initial colors outside ``[0, q)``.  ``finalize`` restores
    ``final_color``, ``sublist``, ``k``, ``r`` and ``local_work``; the
    ``neighbor_initial`` ingest dict is not reconstructed (same
    convention as the greedy-sweep kernel), and on a ``max_rounds``-
    truncated run nodes that never reached a turn keep zeroed ``k`` /
    ``r`` / ``local_work`` rather than partially-delivered counts.
    """

    def prepare(self, compiled, programs, bandwidth):
        first = programs[0]
        q = first.q
        color_space_size = first.color_space_size
        for program in programs:
            if (program.q != q
                    or program.color_space_size != color_space_size
                    or program.trace is not None
                    or program.final_color is not None
                    or program.sublist or program.neighbor_initial
                    or program.local_work
                    or any(program.k.values()) or any(program.r.values())
                    or not 0 <= program.initial_color < q):
                return None
        order = compiled.order
        indptr = compiled.indptr
        indices = compiled.indices
        initial = [program.initial_color for program in programs]
        out_earlier: List[list] = []
        out_later: List[list] = []
        recv_earlier: List[list] = []
        by_class: Dict[int, list] = {}
        for i, own in enumerate(initial):
            outs = programs[i].out_neighbors
            earlier: List[int] = []
            later: List[int] = []
            receivers: List[int] = []
            # Row order is ``ctx.neighbors`` order, which fixes the
            # CONGEST per-message check order for the Phase II sends.
            for j in indices[indptr[i]:indptr[i + 1]]:
                other = initial[j]
                if other < own:
                    receivers.append(j)
                    if order[j] in outs:
                        earlier.append(j)
                elif other > own and order[j] in outs:
                    later.append(j)
            out_earlier.append(earlier)
            out_later.append(later)
            recv_earlier.append(receivers)
            by_class.setdefault(own, []).append(i)
        total_copies, envelopes = fanout_totals(compiled)
        n = len(programs)
        state = self._prepare_arrays(programs, out_earlier, out_later)
        return {
            "programs": programs,
            "order": order,
            "initial": initial,
            "arrays": state,
            "out_earlier": out_earlier,
            "out_later": out_later,
            "recv_earlier": recv_earlier,
            "by_class": by_class,
            "sublists": [()] * n,
            "kdicts": [None] * n,
            "rcounts": [None] * n,
            "finals": [None] * n,
            "work": [0] * n,
            "remaining": n,
            "q": q,
            "total_copies": total_copies,
            "envelopes": envelopes,
            "bits_initial": color_bits(q),
            "bits_color": color_bits(color_space_size),
            "check": (None if type(bandwidth) is LocalModel
                      else bandwidth.check),
            "check_fanout": (None if type(bandwidth) is LocalModel
                             else bandwidth.check_fanout),
            "degrees": compiled.degrees,
        }

    def _prepare_arrays(self, programs, out_earlier, out_later):
        """NumPy column state for the tally paths, or ``None`` to decline.

        The array path adds two columns next to the Python ones: a lazy
        int64 pool of committed sub-lists (each sub-list is converted at
        most once, the first time a batched Phase I fold consumes it) and
        an int64 mirror of the finals column (``-1`` = undecided) for the
        batched Phase II ``r_v`` tally.  Small populations, color values
        beyond int64, and topologies where no node could ever reach a
        tally of ``MIN_TALLY`` elements (so the mirror bookkeeping would
        be pure overhead) keep the pure-Python columns.
        """
        np = arrays.get_numpy()
        if np is None or len(programs) < arrays.MIN_BATCH:
            return None
        if not any(
            len(out_earlier[i]) * programs[i].p >= arrays.MIN_TALLY
            or len(out_later[i]) >= arrays.MIN_TALLY
            for i in range(len(programs))
        ):
            return None
        for program in programs:
            colors = program.color_list
            if colors and not (-arrays.MAX_COLOR <= min(colors)
                               and max(colors) <= arrays.MAX_COLOR):
                return None
        self.backend = "numpy"
        return {
            "np": np,
            "pool": [None] * len(programs),
            "finals": np.full(len(programs), -1, dtype=np.int64),
        }

    def step(self, round_number, columns, inboxes) -> KernelRound:
        if round_number == 1:
            bits = columns["bits_initial"]
            check_fanout = columns["check_fanout"]
            if check_fanout is not None:
                order = columns["order"]
                initial = columns["initial"]
                for i, degree in enumerate(columns["degrees"]):
                    if degree:
                        check_fanout(
                            intern_broadcast(
                                order[i], _TAG_INITIAL, initial[i], bits
                            ),
                            degree,
                        )
            copies = columns["total_copies"]
            return KernelRound(
                active=columns["remaining"],
                messages=copies,
                bits=copies * bits,
                max_message_bits=bits if copies else 0,
                broadcasts=columns["envelopes"],
            )
        q = columns["q"]
        if round_number <= q + 1:
            return self._step_phase1(round_number - 2, columns)
        return self._step_phase2(2 * q + 1 - round_number, columns)

    def _step_phase1(self, color_class: int, columns) -> KernelRound:
        deciders = columns["by_class"].get(color_class, ())
        messages = 0
        bits = 0
        max_bits = 0
        envelopes = 0
        if deciders:
            programs = columns["programs"]
            order = columns["order"]
            out_earlier = columns["out_earlier"]
            sublists = columns["sublists"]
            kdicts = columns["kdicts"]
            work = columns["work"]
            degrees = columns["degrees"]
            bits_color = columns["bits_color"]
            check_fanout = columns["check_fanout"]
            state = columns["arrays"]
        for i in deciders:
            program = programs[i]
            defect = program.defect_fn
            earlier = out_earlier[i]
            # Each earlier sub-list holds at most p colors, so
            # len(earlier) * p bounds the fold size; only pay for the
            # exact sum once that cheap bound clears the threshold.
            total = 0
            if state is not None and earlier \
                    and len(earlier) * program.p >= arrays.MIN_TALLY:
                total = sum(len(sublists[j]) for j in earlier)
            if total >= arrays.MIN_TALLY and earlier \
                    and state is not None:
                # Batched k_v fold: concatenate the earlier sub-lists
                # from the int64 pool (each converted at most once) and
                # tally them against the node's color list in C.
                np = state["np"]
                pool = state["pool"]
                rows = []
                for j in earlier:
                    row = pool[j]
                    if row is None:
                        sub_j = sublists[j]
                        row = pool[j] = np.fromiter(
                            sub_j, np.int64, len(sub_j)
                        )
                    rows.append(row)
                vals = np.concatenate(rows)
                clist = program.color_list
                list_np = np.fromiter(clist, np.int64, len(clist))
                candidates, inverse = np.unique(
                    list_np, return_inverse=True
                )
                counts = arrays.membership_counts(np, vals, candidates)
                k = dict(zip(clist, counts[inverse].tolist()))
                lw = total
            else:
                k = {color: 0 for color in program.color_list}
                lw = 0
                for j in earlier:
                    for color in sublists[j]:
                        lw += 1
                        if color in k:
                            k[color] += 1
            ranked = sorted(
                program.color_list,
                key=lambda color: (-(defect[color] - k[color]), color),
            )
            size = len(program.color_list)
            lw += size * max(1, (size - 1).bit_length())
            sub = tuple(ranked[:program.p])
            sublists[i] = sub
            kdicts[i] = k
            work[i] += lw
            degree = degrees[i]
            if degree:
                payload_bits = len(sub) * bits_color
                if check_fanout is not None:
                    check_fanout(
                        intern_broadcast(
                            order[i], _TAG_SUBLIST, sub, payload_bits
                        ),
                        degree,
                    )
                messages += degree
                bits += degree * payload_bits
                if payload_bits > max_bits:
                    max_bits = payload_bits
                envelopes += 1
        return KernelRound(
            active=columns["remaining"],
            messages=messages,
            bits=bits,
            max_message_bits=max_bits,
            broadcasts=envelopes,
        )

    def _step_phase2(self, color_class: int, columns) -> KernelRound:
        deciders = columns["by_class"].get(color_class, ())
        messages = 0
        if deciders:
            programs = columns["programs"]
            order = columns["order"]
            out_later = columns["out_later"]
            recv_earlier = columns["recv_earlier"]
            sublists = columns["sublists"]
            kdicts = columns["kdicts"]
            rcounts = columns["rcounts"]
            finals = columns["finals"]
            work = columns["work"]
            bits_color = columns["bits_color"]
            check = columns["check"]
            state = columns["arrays"]
        for i in deciders:
            program = programs[i]
            k = kdicts[i]
            defect = program.defect_fn
            later = out_later[i]
            if state is not None and len(later) >= arrays.MIN_TALLY:
                # Batched r_v tally: gather the later out-neighbors'
                # committed finals from the int64 mirror and count them
                # against the color list; only seen colors enter rc,
                # matching the Python dict's contents exactly.
                np = state["np"]
                row_np = np.fromiter(later, np.int64, len(later))
                committed = state["finals"][row_np]
                clist = program.color_list
                candidates = np.unique(
                    np.fromiter(clist, np.int64, len(clist))
                )
                tallies = arrays.membership_counts(
                    np, committed, candidates
                )
                rc = {
                    color: count
                    for color, count in zip(candidates.tolist(),
                                            tallies.tolist())
                    if count
                }
                lw = len(later)
            else:
                rc = {}
                lw = 0
                for j in later:
                    lw += 1
                    neighbor_final = finals[j]
                    if neighbor_final in k:
                        rc[neighbor_final] = rc.get(neighbor_final, 0) + 1
            chosen = None
            for color in sorted(sublists[i]):
                lw += 1
                if k[color] + rc.get(color, 0) <= defect[color]:
                    chosen = color
                    break
            if chosen is None:
                r = {color: 0 for color in program.color_list}
                r.update(rc)
                raise AlgorithmFailure(
                    f"node {program.node!r}: no color in S_v = "
                    f"{sublists[i]} satisfies Eq. (5); k={k} r={r} -- "
                    f"Eq. (2) must have been violated"
                )
            finals[i] = chosen
            if state is not None:
                state["finals"][i] = chosen
            rcounts[i] = rc
            work[i] += lw
            receivers = recv_earlier[i]
            if receivers:
                if check is not None:
                    sender = order[i]
                    for j in receivers:
                        check(Message(
                            sender, order[j], _TAG_FINAL, chosen, bits_color
                        ))
                messages += len(receivers)
        remaining = columns["remaining"] - len(deciders)
        columns["remaining"] = remaining
        bits_color = columns["bits_color"]
        return KernelRound(
            active=remaining,
            messages=messages,
            bits=messages * bits_color,
            max_message_bits=bits_color if messages else 0,
        )

    def finalize(self, columns, programs) -> None:
        sublists = columns["sublists"]
        kdicts = columns["kdicts"]
        rcounts = columns["rcounts"]
        finals = columns["finals"]
        work = columns["work"]
        for i, program in enumerate(programs):
            program.sublist = sublists[i]
            program.final_color = finals[i]
            program.local_work = work[i]
            k = kdicts[i]
            if k is not None:
                program.k = k
            r = {color: 0 for color in program.color_list}
            rc = rcounts[i]
            if rc:
                r.update(rc)
            program.r = r


register_kernel(TwoSweepProgram, TwoSweepKernel)
