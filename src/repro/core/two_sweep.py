"""Algorithm 1: the Two-Sweep list defective coloring algorithm.

This is the paper's base algorithm (Theorem 1.1 with ``epsilon = 0``).
Given an oriented graph with a proper ``q``-coloring and an OLDC instance
satisfying Eq. (2),

    ``sum_{x in L_v} (d_v(x) + 1) > max{p, |L_v| / p} * beta_v``,

two sweeps over the color classes solve the instance in O(q) rounds:

* **Phase I** (colors ascending): node ``v`` picks a sub-list
  ``S_v subseteq L_v`` of at most ``p`` colors maximizing
  ``d_v(x) - k_v(x)``, where ``k_v(x)`` counts out-neighbors *earlier* in
  the sweep whose sub-list contains ``x`` (Lemma 3.1 shows the best such
  sub-list satisfies Eq. (4)).
* **Phase II** (colors descending): ``v`` picks a final color
  ``x in S_v`` with ``k_v(x) + r_v(x) <= d_v(x)``, where ``r_v(x)`` counts
  *later*-sweep out-neighbors already committed to ``x`` (Lemma 3.2 shows
  one exists).

Round layout (1 round per sweep step, plus one initial round in which
nodes forward their initial color, exactly as Theorem 1.1 states):

* round 1: everyone broadcasts its initial color;
* round ``2 + c``: color class ``c`` broadcasts its sub-list ``S_v``;
* round ``q + 2 + (q - 1 - c)``: color class ``c`` announces its final
  color to the neighbors that still need it.

Messages: an initial color (``log q`` bits), a sub-list of at most ``p``
colors (``p log C`` bits), and a final color (``log C`` bits).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..coloring.instance import OLDCInstance
from ..coloring.result import ColoringResult
from ..sim.congest import BandwidthModel
from ..sim.errors import (
    AlgorithmFailure,
    InfeasibleInstanceError,
    InstanceError,
)
from ..sim.message import color_bits
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.node import NodeProgram, RoundContext
from ..sim.scheduler import run_protocol

Node = Hashable
Color = int

_TAG_INITIAL = "initial-color"
_TAG_SUBLIST = "sublist"
_TAG_FINAL = "final-color"


class TwoSweepProgram(NodeProgram):
    """One node's side of Algorithm 1."""

    def __init__(self, node: Node, initial_color: Color, q: int, p: int,
                 color_list: Tuple[Color, ...],
                 defect_fn: Mapping[Color, int],
                 out_neighbors: frozenset,
                 color_space_size: int,
                 trace: Optional[List[dict]] = None):
        self.node = node
        self.initial_color = initial_color
        self.q = q
        self.p = p
        self.color_list = color_list
        self.defect_fn = dict(defect_fn)
        self.out_neighbors = out_neighbors
        self.color_space_size = color_space_size
        self.trace = trace
        # Learned during the run:
        self.neighbor_initial: Dict[Node, Color] = {}
        self.k: Dict[Color, int] = {color: 0 for color in color_list}
        self.r: Dict[Color, int] = {color: 0 for color in color_list}
        self.sublist: Tuple[Color, ...] = ()
        self.final_color: Optional[Color] = None
        #: Elementary color operations performed by this node: one per
        #: received sub-list/final-color entry processed, ``|L| log |L|``
        #: for the Phase I sort, one per Phase II feasibility probe.
        #: Measures the "near-linear in Delta times list size" claim of
        #: Section 1.1 (cf. the exponential local work of [FK23a]).
        self.local_work = 0

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round_number == 1:
            ctx.broadcast(
                _TAG_INITIAL, self.initial_color, bits=color_bits(self.q)
            )
            return
        self._collect(ctx)
        phase1_turn = 2 + self.initial_color
        phase2_turn = self.q + 2 + (self.q - 1 - self.initial_color)
        if ctx.round_number == phase1_turn:
            self._act_phase1(ctx)
        if ctx.round_number == phase2_turn:
            self._act_phase2(ctx)
            ctx.halt()

    def _collect(self, ctx: RoundContext) -> None:
        for sender, payload in ctx.received(_TAG_INITIAL).items():
            self.neighbor_initial[sender] = payload
        for sender, payload in ctx.received(_TAG_SUBLIST).items():
            if sender not in self.out_neighbors:
                continue
            # Only sub-lists of *earlier* out-neighbors feed k_v.
            if self.neighbor_initial[sender] < self.initial_color:
                for color in payload:
                    self.local_work += 1
                    if color in self.k:
                        self.k[color] += 1
        for sender, payload in ctx.received(_TAG_FINAL).items():
            if sender not in self.out_neighbors:
                continue
            if self.neighbor_initial[sender] > self.initial_color:
                self.local_work += 1
                if payload in self.r:
                    self.r[payload] += 1

    # ------------------------------------------------------------------
    # Phase I: pick the sub-list S_v
    # ------------------------------------------------------------------
    def _act_phase1(self, ctx: RoundContext) -> None:
        ranked = sorted(
            self.color_list,
            key=lambda color: (-(self.defect_fn[color] - self.k[color]), color),
        )
        size = len(self.color_list)
        self.local_work += size * max(1, (size - 1).bit_length())
        self.sublist = tuple(ranked[: self.p])
        if self.trace is not None:
            self.trace.append({
                "node": self.node,
                "phase": 1,
                "round": ctx.round_number,
                "sublist": self.sublist,
                "k": dict(self.k),
            })
        ctx.broadcast(
            _TAG_SUBLIST,
            self.sublist,
            bits=len(self.sublist) * color_bits(self.color_space_size),
        )

    # ------------------------------------------------------------------
    # Phase II: commit to a color satisfying Eq. (5)
    # ------------------------------------------------------------------
    def _act_phase2(self, ctx: RoundContext) -> None:
        chosen = None
        for color in sorted(self.sublist):
            self.local_work += 1
            if self.k[color] + self.r[color] <= self.defect_fn[color]:
                chosen = color
                break
        if chosen is None:
            raise AlgorithmFailure(
                f"node {self.node!r}: no color in S_v = {self.sublist} "
                f"satisfies Eq. (5); k={self.k} r={self.r} -- Eq. (2) must "
                f"have been violated"
            )
        self.final_color = chosen
        if self.trace is not None:
            self.trace.append({
                "node": self.node,
                "phase": 2,
                "round": ctx.round_number,
                "color": chosen,
                "k": dict(self.k),
                "r": dict(self.r),
            })
        # Only in-neighbors earlier in the sweep still need the color.
        for neighbor in ctx.neighbors:
            if self.neighbor_initial[neighbor] < self.initial_color:
                ctx.send(
                    neighbor,
                    _TAG_FINAL,
                    chosen,
                    bits=color_bits(self.color_space_size),
                )

    def output(self) -> Optional[Color]:
        return self.final_color


def check_two_sweep_preconditions(instance: OLDCInstance,
                                  initial_colors: Mapping[Node, Color],
                                  q: int, p: int) -> None:
    """Raise unless the inputs satisfy Algorithm 1's requirements."""
    if p < 1:
        raise InstanceError("p must be at least 1")
    for node in instance.graph.nodes:
        color = initial_colors.get(node)
        if color is None or not 0 <= color < q:
            raise InstanceError(
                f"node {node!r}: initial color {color!r} outside 0..{q - 1}"
            )
    for u in instance.graph.nodes:
        for v in instance.graph.out_neighbors(u):
            if initial_colors[u] == initial_colors[v]:
                raise InstanceError(
                    f"initial coloring is not proper: edge {u!r}-{v!r}"
                )
    for node in instance.graph.nodes:
        # Nodes without out-neighbors can never see a conflict; any
        # non-empty list suffices for them (beta_v is floored at 1 in the
        # paper's convention, which would otherwise reject tiny lists).
        if (instance.graph.outdegree(node) == 0
                and instance.list_size(node) > 0):
            continue
        if not instance.satisfies_eq2(p, node):
            raise InfeasibleInstanceError(
                node,
                f"Eq. (2) fails: weight {instance.weight(node)} <= "
                f"max({p}, {instance.list_size(node)}/{p}) * "
                f"beta {instance.beta(node)}",
            )


def two_sweep(instance: OLDCInstance,
              initial_colors: Mapping[Node, Color],
              q: int,
              p: int,
              ledger: Optional[CostLedger] = None,
              bandwidth: Optional[BandwidthModel] = None,
              check: bool = True,
              trace: Optional[List[dict]] = None) -> ColoringResult:
    """Run Algorithm 1 and return the computed OLDC solution.

    Parameters
    ----------
    instance:
        The oriented list defective coloring instance.
    initial_colors:
        A proper coloring with colors ``0..q-1``.
    p:
        The sub-list size parameter of Theorem 1.1.
    check:
        When true (default), validate Eq. (2) and the initial coloring up
        front and raise :class:`InfeasibleInstanceError` /
        :class:`InstanceError` on violations.  With ``check=False`` the
        algorithm runs anyway and raises :class:`AlgorithmFailure` only if
        a node actually gets stuck.
    trace:
        Optional list collecting per-node phase events (used by the
        Figure 1 sweep-mechanics benchmark).
    """
    ledger = ensure_ledger(ledger)
    if check:
        check_two_sweep_preconditions(instance, initial_colors, q, p)
    graph = instance.graph
    programs = {
        node: TwoSweepProgram(
            node=node,
            initial_color=initial_colors[node],
            q=q,
            p=p,
            color_list=instance.lists[node],
            defect_fn=instance.defects[node],
            out_neighbors=frozenset(graph.out_neighbors(node)),
            color_space_size=instance.color_space_size,
            trace=trace,
        )
        for node in graph.nodes
    }
    with ledger.phase("two-sweep"):
        outputs, _ = run_protocol(
            graph.network, programs, bandwidth=bandwidth, ledger=ledger
        )
    work = [program.local_work for program in programs.values()]
    return ColoringResult(
        colors=dict(outputs),
        orientation=None,
        ledger=ledger,
        stats={
            "max_local_work": max(work, default=0),
            "total_local_work": sum(work),
        },
    )
