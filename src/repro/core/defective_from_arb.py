"""Theorem 1.4 (Section 4.1): list defective via list arbdefective coloring.

On a graph of neighborhood independence ``theta``, a ``P_D`` instance with
slack ``21 * theta * (ceil(log Delta) + 1) * S`` is solved by
``ceil(log Delta) + 1`` consecutive ``P_A(S, C)`` instances:

1. rescale defects: ``d'_v(x) = ceil((d_v(x) + 1) / (7 * theta)) - 1``;
2. iterate ``i = ceil(log Delta) .. 0`` with per-iteration defect
   ``d_i = 2^i - 1``; a color joins ``L_{v,i}`` in the first iteration
   where ``d'_v(x) - a_v(x, i) >= d_i`` (``a_v`` counts already-colored
   same-color neighbors);
3. all uncolored nodes with
   ``|L_{v,i}| * (d_i + 1) > S * (deg(v) - deg~(v, i))`` form ``H_i`` and
   are colored by the ``P_A(S, C)`` solver with uniform defects ``d_i``.

Lemma 4.2 shows every node is colored in some iteration; Lemma 4.3 bounds
the total same-color neighbors by ``max(1, 7 * theta * d'_v(x)) - 1 <=
d_v(x)`` using the neighborhood independence (Claim 4.1).

Implementation note: the proof assumes ``d_v(x) <= Delta``; nodes holding
a color with ``d_v(x) >= deg(v)`` are peeled up front (they can never
exceed that defect), which enforces the assumption for everyone else.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional, Set, Tuple

from ..coloring.instance import ArbdefectiveInstance, ListDefectiveInstance
from ..coloring.result import ColoringResult
from ..coloring.validate import check_list_defective
from ..sim.errors import AlgorithmFailure, InfeasibleInstanceError
from ..sim.metrics import CostLedger, ensure_ledger
from .partial import PartialColoring
from .slack_reduction import ArbSolver

Node = Hashable
Color = int


def theorem_14_slack(theta: int, max_degree: int, s: float) -> float:
    """The slack Eq. (9) requires: ``21 * theta * (ceil(log Delta)+1) * S``."""
    levels = math.ceil(math.log2(max(2, max_degree))) + 1
    return 21.0 * theta * levels * s


def defective_from_arbdefective(instance: ListDefectiveInstance,
                                theta: int,
                                s: float,
                                arb_solver: ArbSolver,
                                initial_colors: Mapping[Node, Color],
                                q: int,
                                ledger: Optional[CostLedger] = None,
                                check: bool = True,
                                validate: bool = True) -> ColoringResult:
    """Solve a ``P_D`` instance with Eq. (9) slack via ``P_A(S, C)`` calls.

    ``arb_solver`` is handed :class:`ArbdefectiveInstance` objects whose
    slack exceeds ``s`` and must return colors plus an orientation.
    ``initial_colors``/``q`` are forwarded to the solver (all paper
    subroutines bootstrap from a proper coloring).
    """
    ledger = ensure_ledger(ledger)
    network = instance.network
    theta = max(1, theta)
    max_degree = network.max_degree()
    if check:
        need = theorem_14_slack(theta, max_degree, s)
        for node in network:
            if instance.weight(node) <= need * network.degree(node):
                raise InfeasibleInstanceError(
                    node,
                    f"Eq. (9) fails: weight {instance.weight(node)} <= "
                    f"{need:.1f} * deg {network.degree(node)}",
                )

    # Reuse the arbdefective bookkeeping; the orientation it tracks is
    # internal (P_D output carries no orientation).
    tracker = PartialColoring(ArbdefectiveInstance(
        network, instance.lists, instance.defects, instance.color_space_size
    ))

    with ledger.phase("defective-from-arb"):
        # Peel nodes that own a free color (enforces d_v(x) < deg <= Delta).
        free = {}
        for node in network:
            for color in instance.lists[node]:
                if instance.defects[node][color] >= network.degree(node):
                    free[node] = color
                    break
        if free:
            ledger.charge_round(
                messages=sum(network.degree(node) for node in free)
            )
            tracker.commit(free)

        rescaled: Dict[Node, Dict[Color, int]] = {
            node: {
                color: math.ceil(
                    (instance.defects[node][color] + 1) / (7.0 * theta)
                ) - 1
                for color in instance.lists[node]
            }
            for node in network
        }
        consumed: Dict[Node, Set[Color]] = {node: set() for node in network}

        top = math.ceil(math.log2(max(2, max_degree)))
        for i in range(top, -1, -1):
            d_i = 2 ** i - 1
            iteration_lists: Dict[Node, Tuple[Color, ...]] = {}
            for node in tracker.uncolored():
                fresh = tuple(
                    color
                    for color in instance.lists[node]
                    if color not in consumed[node]
                    and rescaled[node][color] - tracker.conflicts(node, color)
                    >= d_i
                )
                iteration_lists[node] = fresh
                consumed[node].update(fresh)
            members = [
                node
                for node, fresh in iteration_lists.items()
                if len(fresh) * (d_i + 1) > s * (
                    network.degree(node)
                    - tracker.colored_neighbor_count(node)
                )
            ]
            if not members:
                continue
            sub = ArbdefectiveInstance(
                network.subgraph(members),
                {node: iteration_lists[node] for node in members},
                {
                    node: {color: d_i for color in iteration_lists[node]}
                    for node in members
                },
                instance.color_space_size,
            )
            sub_initial = {node: initial_colors[node] for node in members}
            result = arb_solver(sub, sub_initial, q, ledger)
            tracker.commit(result.colors, result.orientation)

        tracker.require_complete("Theorem 1.4 (Lemma 4.2)")

    if validate:
        violations = check_list_defective(instance, tracker.colors)
        if violations:
            raise AlgorithmFailure(
                f"Theorem 1.4 output invalid (Lemma 4.3 violated): "
                f"{violations[:3]}"
            )
    return ColoringResult(
        colors=tracker.colors, orientation=None, ledger=ledger
    )
