"""Theorem 1.3: (deg+1)-list coloring in the CONGEST model.

The paper plugs Theorem 1.2 into the black-box framework of [FK23a,
Theorem 4].  That framework is a separate paper; per DESIGN.md
(substitution 2) we replace it with the present paper's own Lemma A.1:

1. Linial's O(Delta^2)-coloring bootstraps a small proper coloring;
2. the (deg+1)-list instance -- all defects zero, slack above 1 -- is fed
   to :func:`repro.core.slack_reduction.slack_reduction_full` with
   ``mu`` equal to Theorem 1.2's exact slack factor (just below
   ``3 * sqrt(C)``), so every class sub-instance satisfies Theorem 1.2's
   precondition under the orient-by-initial-coloring orientation;
3. each sub-instance is solved by :func:`repro.core.congest_oldc.congest_oldc`.

The interface and validity guarantees match Theorem 1.3; the round
complexity carries an extra ~sqrt(Delta) factor versus the cited black
box (O(C log Delta) solver calls instead of O(sqrt(C) log Delta)), which
EXPERIMENTS.md reports explicitly.  A zero-defect arbdefective solution
is a proper list coloring, so the output is checked for properness.

Also provided: the classic O(Delta^2 + log* n) baseline (Linial plus
one-color-per-round reduction) the benchmarks compare against.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional

from ..coloring.instance import (
    ArbdefectiveInstance,
    OLDCInstance,
    degree_plus_one_instance,
)
from ..coloring.result import ColoringResult
from ..coloring.validate import (
    assert_proper_coloring,
    check_list_membership,
)
from ..graphs.identifiers import sequential_ids
from ..graphs.oriented import orient_by_coloring
from ..sim.congest import BandwidthModel
from ..sim.errors import AlgorithmFailure
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from ..substrates.greedy import greedy_color_reduction
from ..substrates.linial import linial_coloring
from .congest_oldc import congest_oldc, required_slack_factor
from .slack_reduction import slack_reduction_full

Node = Hashable
Color = int


def solve_arbdefective_via_congest(instance: ArbdefectiveInstance,
                                   initial_colors: Mapping[Node, Color],
                                   q: int,
                                   ledger: CostLedger,
                                   bandwidth: Optional[BandwidthModel] = None
                                   ) -> ColoringResult:
    """Solve a high-slack ``P_A`` instance with the Theorem 1.2 solver.

    The orientation is *chosen* here (towards the smaller initial color,
    so ``beta_v <= deg(v)``), handed to the OLDC solver as input, and
    returned as the arbdefective output orientation.
    """
    graph = orient_by_coloring(instance.network, initial_colors)
    oldc = OLDCInstance(
        graph, instance.lists, instance.defects, instance.color_space_size
    )
    result = congest_oldc(
        oldc, initial_colors, q, ledger=ledger, bandwidth=bandwidth,
    )
    orientation = {
        node: tuple(
            neighbor
            for neighbor in graph.out_neighbors(node)
            if result.colors[neighbor] == result.colors[node]
        )
        for node in graph.nodes
    }
    return ColoringResult(
        colors=result.colors, orientation=orientation, ledger=ledger
    )


def deg_plus_one_list_coloring(network: Network,
                               lists: Mapping[Node, Iterable[Color]],
                               ids: Optional[Mapping[Node, int]] = None,
                               ledger: Optional[CostLedger] = None,
                               bandwidth: Optional[BandwidthModel] = None,
                               color_space_size: Optional[int] = None
                               ) -> ColoringResult:
    """Theorem 1.3: solve a (deg+1)-list coloring instance in CONGEST.

    ``lists[v]`` must contain at least ``deg(v) + 1`` colors from a color
    space of size ``color_space_size`` (defaults to the largest color plus
    one; the theorem assumes it is O(Delta)).
    """
    ledger = ensure_ledger(ledger)
    defective = degree_plus_one_instance(network, lists, color_space_size)
    instance = ArbdefectiveInstance(
        network, defective.lists, defective.defects,
        defective.color_space_size,
    )
    if ids is None:
        ids = sequential_ids(network)
    q_ids = max(ids.values()) + 1 if ids else 1
    with ledger.phase("theorem-1.3"):
        colors0, q0 = linial_coloring(
            network, ids, q_ids, ledger=ledger, bandwidth=bandwidth
        )
        mu = required_slack_factor(instance.color_space_size)

        def inner(sub, sub_initial, sub_q, inner_ledger):
            return solve_arbdefective_via_congest(
                sub, sub_initial, sub_q, inner_ledger, bandwidth=bandwidth
            )

        result = slack_reduction_full(
            instance, colors0, q0, mu=mu, inner_solver=inner,
            ledger=ledger, bandwidth=bandwidth, check=False,
        )
    assert_proper_coloring(network, result.colors)
    violations = check_list_membership(instance.lists, result.colors)
    if violations:
        raise AlgorithmFailure(f"list violations: {violations[:3]}")
    return ColoringResult(
        colors=result.colors, orientation=None, ledger=ledger
    )


def delta_plus_one_coloring(network: Network,
                            ids: Optional[Mapping[Node, int]] = None,
                            ledger: Optional[CostLedger] = None,
                            bandwidth: Optional[BandwidthModel] = None
                            ) -> ColoringResult:
    """``(Delta + 1)``-coloring via Theorem 1.3 (identical full lists)."""
    palette = tuple(range(network.raw_max_degree() + 1))
    lists = {node: palette for node in network}
    return deg_plus_one_list_coloring(
        network, lists, ids=ids, ledger=ledger, bandwidth=bandwidth,
        color_space_size=len(palette),
    )


def linial_reduction_baseline(network: Network,
                              ids: Optional[Mapping[Node, int]] = None,
                              ledger: Optional[CostLedger] = None,
                              bandwidth: Optional[BandwidthModel] = None
                              ) -> ColoringResult:
    """The classic O(Delta^2 + log* n) ``(Delta+1)``-coloring baseline."""
    ledger = ensure_ledger(ledger)
    if ids is None:
        ids = sequential_ids(network)
    q_ids = max(ids.values()) + 1 if ids else 1
    with ledger.phase("baseline-linial-reduction"):
        colors0, q0 = linial_coloring(
            network, ids, q_ids, ledger=ledger, bandwidth=bandwidth
        )
        target = network.raw_max_degree() + 1
        if q0 > target:
            colors = greedy_color_reduction(
                network, colors0, q0, target,
                ledger=ledger, bandwidth=bandwidth,
            )
        else:
            colors = colors0
    assert_proper_coloring(network, colors)
    return ColoringResult(colors=colors, orientation=None, ledger=ledger)
