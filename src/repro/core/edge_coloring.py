"""(2 Delta - 1)-edge coloring -- the headline corollary of Theorem 1.5.

Simulating the line graph on the original network: each edge becomes a
virtual node hosted by one endpoint; two virtual nodes are adjacent iff
the edges share an endpoint, so the line graph of a rank-r hypergraph
has neighborhood independence at most r, and Theorem 1.5's
(Delta+1)-coloring of the line graph is a proper edge coloring of the
base structure with at most 2 Delta - 1 colors (rank 2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from ..coloring.result import ColoringResult
from ..graphs.hypergraphs import Hypergraph
from ..graphs.line_graphs import (
    edge_coloring_from_line_coloring,
    is_proper_edge_coloring,
    line_graph_of_hypergraph,
    line_graph_of_network,
)
from ..sim.congest import BandwidthModel
from ..sim.errors import AlgorithmFailure
from ..sim.metrics import CostLedger, ensure_ledger
from ..sim.network import Network
from .recursion import theta_delta_plus_one_coloring

Node = Hashable


def edge_coloring(network: Network,
                  ledger: Optional[CostLedger] = None,
                  bandwidth: Optional[BandwidthModel] = None,
                  **solver_kwargs
                  ) -> Tuple[Dict[Tuple[Node, Node], int], ColoringResult]:
    """A proper edge coloring with at most ``2 Delta - 1`` colors.

    Returns ``(edge_colors, line_graph_result)``; the second element
    carries the round/message accounting of the underlying Theorem 1.5
    run on the line graph.  Validates the output before returning.
    """
    ledger = ensure_ledger(ledger)
    line, edge_of = line_graph_of_network(network)
    if len(line) == 0:
        return {}, ColoringResult(colors={}, orientation={}, ledger=ledger)
    result = theta_delta_plus_one_coloring(
        line, theta=2, ledger=ledger, bandwidth=bandwidth, **solver_kwargs
    )
    edge_colors = edge_coloring_from_line_coloring(result.colors, edge_of)
    if not is_proper_edge_coloring(network, edge_colors):
        raise AlgorithmFailure("edge coloring failed validation")
    budget = max(1, 2 * network.raw_max_degree() - 1)
    if result.color_count() > budget:
        raise AlgorithmFailure(
            f"edge coloring used {result.color_count()} colors, "
            f"budget 2*Delta-1 = {budget}"
        )
    return edge_colors, result


def hyperedge_coloring(hypergraph: Hypergraph,
                       ledger: Optional[CostLedger] = None,
                       bandwidth: Optional[BandwidthModel] = None,
                       **solver_kwargs
                       ) -> Tuple[Dict[FrozenSet[int], int], ColoringResult]:
    """Color the hyperedges of a rank-r hypergraph so that intersecting
    hyperedges get distinct colors, using at most ``Delta(L(H)) + 1``
    colors via Theorem 1.5 (``theta <= r`` on the line graph)."""
    ledger = ensure_ledger(ledger)
    line, edge_of = line_graph_of_hypergraph(hypergraph)
    if len(line) == 0:
        return {}, ColoringResult(colors={}, orientation={}, ledger=ledger)
    result = theta_delta_plus_one_coloring(
        line, theta=max(2, hypergraph.rank), ledger=ledger,
        bandwidth=bandwidth, **solver_kwargs,
    )
    colors = {
        edge_of[index]: color for index, color in result.colors.items()
    }
    for index in line:
        for other in line.neighbors(index):
            if result.colors[index] == result.colors[other]:
                raise AlgorithmFailure(
                    "hyperedge coloring failed validation"
                )
    return colors, result
