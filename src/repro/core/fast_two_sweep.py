"""Algorithm 2: the Fast-Two-Sweep algorithm (Theorem 1.1, epsilon > 0).

Algorithm 1's round complexity is O(q), which is too slow when only a
large proper coloring (e.g. the raw identifiers) is available.  Algorithm
2 removes the dependence on ``q``: it first computes the *defective*
coloring of Lemma 3.4 with relative defect ``alpha = epsilon / p`` in
O(log* q) rounds, drops the monochromatic edges, pays for them by
shrinking every defect by ``floor(beta_v * epsilon / p)``, and then runs
Algorithm 1 on the remaining properly-colored graph whose color count is
only O((p / epsilon)^2).

Deviation from the paper's pseudocode: Algorithm 2 writes the defect
reduction with a ceiling.  We use the floor, which makes both directions
of the proof airtight without extra slack assumptions: the final defect
is ``d'_v(x) + #monochromatic out-neighbors <= d'_v(x) +
floor(alpha * beta_v) = d_v(x)`` (the monochromatic count is an integer
bounded by ``alpha * beta_v``), and the reduced instance keeps
``sum (d'_v(x)+1) > max{p, |L_v|/p} * beta_v`` because
``|L_v| * floor(eps * beta_v / p) <= eps * max{p, |L_v|/p} * beta_v``.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Dict, Hashable, List, Mapping, Optional

from ..coloring.defects import drop_negative_defects
from ..obs.tracer import current_tracer
from ..coloring.instance import OLDCInstance
from ..coloring.result import ColoringResult
from ..sim.congest import BandwidthModel
from ..sim.errors import AlgorithmFailure, InfeasibleInstanceError, InstanceError
from ..sim.metrics import CostLedger, ensure_ledger
from ..substrates.kuhn_defective import kuhn_defective_coloring
from ..substrates.log_star import log_star
from .two_sweep import two_sweep

Node = Hashable
Color = int


def check_fast_two_sweep_preconditions(instance: OLDCInstance,
                                       p: int, epsilon: float) -> None:
    """Raise unless every node satisfies Eq. (7)."""
    if p < 1:
        raise InstanceError("p must be at least 1")
    if epsilon < 0.0:
        raise InstanceError("epsilon must be non-negative")
    for node in instance.graph.nodes:
        # Out-degree-0 nodes never see conflicts; see two_sweep.py.
        if (instance.graph.outdegree(node) == 0
                and instance.list_size(node) > 0):
            continue
        if not instance.satisfies_eq7(p, epsilon, node):
            raise InfeasibleInstanceError(
                node,
                f"Eq. (7) fails: weight {instance.weight(node)} <= "
                f"(1+{epsilon}) * max({p}, {instance.list_size(node)}/{p}) "
                f"* beta {instance.beta(node)}",
            )


def fast_two_sweep(instance: OLDCInstance,
                   initial_colors: Mapping[Node, Color],
                   q: int,
                   p: int,
                   epsilon: float,
                   ledger: Optional[CostLedger] = None,
                   bandwidth: Optional[BandwidthModel] = None,
                   check: bool = True,
                   trace: Optional[List[dict]] = None) -> ColoringResult:
    """Run Algorithm 2: OLDC in O(min{q, (p/eps)^2 + log* q}) rounds.

    With ``epsilon = 0`` this is exactly Algorithm 1.  The instance must
    satisfy Eq. (7); ``initial_colors`` must be a proper ``q``-coloring
    with colors ``0..q-1``.  ``trace`` collects the inner sweep's
    per-node phase events (and, like every trace, pins that sweep to the
    per-node engines -- the vectorized kernels decline traced runs).

    Both phases of the composition are kernelized: under
    ``engine="vectorized"`` the Lemma 3.4 recoloring runs through
    ``AlgebraicRecoloringKernel`` and the final sweep through
    :class:`~repro.core.two_sweep.TwoSweepKernel`, bit-identical to the
    reference engine.
    """
    ledger = ensure_ledger(ledger)
    if check:
        check_fast_two_sweep_preconditions(instance, p, epsilon)
    if epsilon == 0.0:
        return two_sweep(
            instance, initial_colors, q, p,
            ledger=ledger, bandwidth=bandwidth, check=check, trace=trace,
        )
    # Line 1 of Algorithm 2: with few initial colors the plain sweep wins.
    if q <= (p / epsilon) ** 2 + log_star(q):
        return two_sweep(
            instance, initial_colors, q, p,
            ledger=ledger, bandwidth=bandwidth, check=check, trace=trace,
        )

    graph = instance.graph
    alpha = epsilon / p
    # Algorithm-level span covering the whole Theorem 1.1 composition
    # (defective recoloring + reduced sweep); the route taken is logical
    # -- it depends only on (q, p, epsilon), never on the engine.
    tracer = current_tracer()
    scope = (
        tracer.span("algorithm", "fast-two-sweep",
                    nodes=len(graph.network), q=q, p=p, epsilon=epsilon,
                    route="defective+sweep")
        if tracer is not None else nullcontext()
    )
    with scope:
        return _fast_two_sweep_route(
            instance, initial_colors, q, p, epsilon, alpha,
            ledger, bandwidth, trace,
        )


def _fast_two_sweep_route(instance, initial_colors, q, p, epsilon, alpha,
                          ledger, bandwidth, trace):
    graph = instance.graph
    with ledger.phase("fast-two-sweep-defective"):
        psi, palette = kuhn_defective_coloring(
            graph, initial_colors, q, alpha,
            ledger=ledger, bandwidth=bandwidth,
        )

    # G': drop the (few) monochromatic edges of the defective coloring.
    monochromatic = [
        (u, v)
        for u in graph.nodes
        for v in graph.out_neighbors(u)
        if psi[u] == psi[v]
    ]
    reduced_graph = graph.without_edges(monochromatic)

    # d'_v(x) = d_v(x) - floor(beta_v * eps / p); drop negative colors.
    reduction = {
        node: int(math.floor(graph.beta(node) * epsilon / p))
        for node in graph.nodes
    }
    reduced_defects: Dict[Node, Dict[Color, int]] = {
        node: {
            color: instance.defects[node][color] - reduction[node]
            for color in instance.lists[node]
        }
        for node in graph.nodes
    }
    lists2, defects2 = drop_negative_defects(instance.lists, reduced_defects)
    inner = OLDCInstance(
        reduced_graph, lists2, defects2, instance.color_space_size
    )
    for node in inner.graph.nodes:
        if (inner.graph.outdegree(node) == 0
                and inner.list_size(node) > 0):
            continue
        if not inner.satisfies_eq2(p, node):
            raise AlgorithmFailure(
                f"node {node!r}: reduced instance lost Eq. (2) -- "
                f"Theorem 1.1's slack bookkeeping is violated"
            )
    result = two_sweep(
        inner, psi, palette, p,
        ledger=ledger, bandwidth=bandwidth, check=False, trace=trace,
    )
    return ColoringResult(
        colors=result.colors, orientation=None, ledger=ledger,
        stats=result.stats,
    )
