"""The paper's contribution: Two-Sweep algorithms and their compositions."""

from .auto import OLDCPlan, plan_oldc, solve_oldc_auto
from .base_solvers import (
    peel_free_color_nodes,
    solve_arbdefective_base,
    solve_edgeless,
)
from .color_space_reduction import (
    check_reduction_precondition,
    color_space_reduced_oldc,
    reduction_depth,
)
from .congest_oldc import (
    congest_epsilon,
    congest_kappa,
    congest_oldc,
    required_slack_factor,
)
from .defective_from_arb import defective_from_arbdefective, theorem_14_slack
from .edge_coloring import edge_coloring, hyperedge_coloring
from .fast_two_sweep import check_fast_two_sweep_preconditions, fast_two_sweep
from .list_coloring import (
    deg_plus_one_list_coloring,
    delta_plus_one_coloring,
    linial_reduction_baseline,
    solve_arbdefective_via_congest,
)
from .partial import PartialColoring
from .recursion import (
    RecursiveArbSolver,
    lemma_46_slack,
    theta_delta_plus_one_coloring,
    theta_recursive_arbdefective,
)
from .slack_reduction import slack_reduction, slack_reduction_full
from .subspace_choice import (
    build_residual_instance,
    build_subspace_instance,
    subspace_reduced_arbdefective,
)
from .two_sweep import check_two_sweep_preconditions, two_sweep
from .undirected import (
    as_bidirected_oldc,
    list_defective_auto,
    list_defective_two_sweep,
)

__all__ = [
    "OLDCPlan",
    "PartialColoring",
    "as_bidirected_oldc",
    "list_defective_auto",
    "list_defective_two_sweep",
    "plan_oldc",
    "solve_oldc_auto",
    "RecursiveArbSolver",
    "build_residual_instance",
    "build_subspace_instance",
    "check_fast_two_sweep_preconditions",
    "check_reduction_precondition",
    "check_two_sweep_preconditions",
    "color_space_reduced_oldc",
    "congest_epsilon",
    "congest_kappa",
    "congest_oldc",
    "defective_from_arbdefective",
    "deg_plus_one_list_coloring",
    "delta_plus_one_coloring",
    "edge_coloring",
    "hyperedge_coloring",
    "fast_two_sweep",
    "lemma_46_slack",
    "linial_reduction_baseline",
    "peel_free_color_nodes",
    "reduction_depth",
    "required_slack_factor",
    "slack_reduction",
    "slack_reduction_full",
    "solve_arbdefective_base",
    "solve_arbdefective_via_congest",
    "solve_edgeless",
    "subspace_reduced_arbdefective",
    "theorem_14_slack",
    "theta_delta_plus_one_coloring",
    "theta_recursive_arbdefective",
    "two_sweep",
]
