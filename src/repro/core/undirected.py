"""Undirected list defective coloring via the Two-Sweep family.

The paper states Theorem 1.1 for *oriented* instances, but the Two-Sweep
argument covers undirected list defective coloring as well: feed the
graph in as a :class:`~repro.graphs.oriented.BidirectedView` (every
neighbor is an out-neighbor, ``beta_v = deg(v)``).  In Phase II each
neighbor of ``v`` is either earlier in the reverse sweep (its final
color is counted by ``r_v``) or later (it can only take ``v``'s color if
that color is in its sub-list, counted by ``k_v``), so
``k_v(x) + r_v(x) <= d_v(x)`` bounds the *total* number of same-colored
neighbors.  This is the reduction behind the paper's list d-defective
3-coloring claim; the module packages it as a first-class API.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from ..coloring.instance import ListDefectiveInstance, OLDCInstance
from ..coloring.result import ColoringResult
from ..coloring.validate import assert_list_defective
from ..graphs.oriented import BidirectedView
from ..sim.congest import BandwidthModel
from ..sim.metrics import CostLedger, ensure_ledger
from .auto import solve_oldc_auto
from .fast_two_sweep import fast_two_sweep

Node = Hashable
Color = int


def as_bidirected_oldc(instance: ListDefectiveInstance) -> OLDCInstance:
    """The OLDC view of an undirected instance (``beta_v = deg(v)``)."""
    return OLDCInstance(
        BidirectedView(instance.network),
        instance.lists,
        instance.defects,
        instance.color_space_size,
    )


def list_defective_two_sweep(instance: ListDefectiveInstance,
                             initial_colors: Mapping[Node, Color],
                             q: int,
                             p: int,
                             epsilon: float = 0.0,
                             ledger: Optional[CostLedger] = None,
                             bandwidth: Optional[BandwidthModel] = None,
                             check: bool = True,
                             validate: bool = True) -> ColoringResult:
    """Solve an undirected ``P_D`` instance with (Fast-)Two-Sweep.

    Requires Eq. (2)/(7) with ``beta_v = deg(v)``, i.e.
    ``weight(v) > (1 + eps) * max{p, |L_v|/p} * deg(v)``.
    """
    ledger = ensure_ledger(ledger)
    oldc = as_bidirected_oldc(instance)
    result = fast_two_sweep(
        oldc, initial_colors, q, p, epsilon,
        ledger=ledger, bandwidth=bandwidth, check=check,
    )
    if validate:
        assert_list_defective(instance, result.colors)
    return ColoringResult(
        colors=result.colors, orientation=None, ledger=ledger
    )


def list_defective_auto(instance: ListDefectiveInstance,
                        initial_colors: Mapping[Node, Color],
                        q: int,
                        ledger: Optional[CostLedger] = None,
                        bandwidth: Optional[BandwidthModel] = None,
                        validate: bool = True) -> ColoringResult:
    """Undirected ``P_D`` with automatically planned (p, epsilon)."""
    ledger = ensure_ledger(ledger)
    oldc = as_bidirected_oldc(instance)
    result = solve_oldc_auto(
        oldc, initial_colors, q, ledger=ledger, bandwidth=bandwidth,
    )
    if validate:
        assert_list_defective(instance, result.colors)
    return ColoringResult(
        colors=result.colors, orientation=None, ledger=ledger,
        stats=result.stats,
    )
