"""Lemma 3.5: color space reduction for oriented list defective coloring.

Given a solver ``A`` for OLDC instances with
``weight(v) >= beta_v * kappa(Lambda)`` and a splitting parameter
``lambda``, the color space ``{0..C-1}`` is partitioned into ``lambda``
contiguous blocks.  One OLDC instance over the *block* space (lists of at
most ``lambda`` entries, so ``A`` runs with ``Lambda = lambda``) assigns
each node a block such that at most ``d_{v,i}`` out-neighbors share it;
cross-block edges can then never conflict, and a single recursive call on
the same-block subgraph -- with colors renumbered inside their blocks --
finishes the job with color space ``ceil(C / lambda)``.  Depth:
``ceil(log_lambda C)``; required slack: ``kappa(lambda)`` per level.

The block defect allocation follows Eq. (19) (Lemma 4.5) transplanted to
the oriented setting, with one deviation: the paper rounds the allocation
*up*, which breaks the "allocations sum to the spent slack" direction of
the proof by the fractional parts; we round *down*, which makes both
directions exact:

    ``d_{v,i} = floor(kappa * beta_v * W_{v,i} / W_v)``

gives ``sum_i (d_{v,i} + 1) > kappa * beta_v`` (each term exceeds its
real value by less than one but gains the +1) and
``W_{v,i} >= d_{v,i} * W_v / (kappa * beta_v)``, which is exactly the
residual slack the recursion needs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from ..coloring.instance import OLDCInstance
from ..sim.errors import AlgorithmFailure, InfeasibleInstanceError, InstanceError
from ..sim.metrics import CostLedger, ensure_ledger

Node = Hashable
Color = int

#: An OLDC solver: (instance, initial_colors, q, ledger) -> colors.
OLDCSolver = Callable[
    [OLDCInstance, Mapping[Node, Color], int, CostLedger],
    Dict[Node, Color],
]


def reduction_depth(color_space_size: int, lam: int) -> int:
    """``ceil(log_lambda C)``: the number of reduction levels."""
    if lam < 2:
        raise InstanceError("splitting parameter lambda must be at least 2")
    depth = 0
    size = max(1, color_space_size)
    while size > lam:
        size = math.ceil(size / lam)
        depth += 1
    return depth + 1 if color_space_size > 1 else 1


def check_reduction_precondition(instance: OLDCInstance, kappa: float,
                                 lam: int) -> None:
    """Require ``weight(v) > beta_v * kappa ** depth`` at every node."""
    depth = reduction_depth(instance.color_space_size, lam)
    need = kappa ** depth
    for node in instance.graph.nodes:
        if (instance.graph.outdegree(node) == 0
                and instance.list_size(node) > 0):
            continue
        if instance.weight(node) <= instance.beta(node) * need:
            raise InfeasibleInstanceError(
                node,
                f"color space reduction needs weight > beta * kappa^depth = "
                f"{instance.beta(node)} * {kappa:.3f}^{depth}; got "
                f"{instance.weight(node)}",
            )


def color_space_reduced_oldc(instance: OLDCInstance,
                             initial_colors: Mapping[Node, Color],
                             q: int,
                             base_solver: OLDCSolver,
                             kappa: float,
                             lam: int,
                             ledger: Optional[CostLedger] = None,
                             check: bool = True) -> Dict[Node, Color]:
    """Solve an OLDC instance by recursive color space splitting.

    ``base_solver`` must solve any OLDC instance with maximum list size at
    most ``lam`` and ``weight(v) > kappa * beta_v``; it is invoked once
    per level (for the block choice) plus once at the leaf.
    """
    ledger = ensure_ledger(ledger)
    if check:
        check_reduction_precondition(instance, kappa, lam)
    with ledger.phase("color-space-reduction"):
        return _solve(instance, initial_colors, q, base_solver, kappa, lam,
                      ledger)


def _solve(instance: OLDCInstance,
           initial_colors: Mapping[Node, Color],
           q: int,
           base_solver: OLDCSolver,
           kappa: float,
           lam: int,
           ledger: CostLedger) -> Dict[Node, Color]:
    color_space = instance.color_space_size
    if color_space <= lam:
        return base_solver(instance, initial_colors, q, ledger)

    block_size = math.ceil(color_space / lam)

    # ------------------------------------------------------------------
    # Build the block-choice OLDC instance (color space = lambda blocks).
    # ------------------------------------------------------------------
    graph = instance.graph
    block_lists: Dict[Node, Tuple[int, ...]] = {}
    block_defects: Dict[Node, Dict[int, int]] = {}
    block_weight: Dict[Node, Dict[int, int]] = {}
    for node in graph.nodes:
        weights: Dict[int, int] = {}
        for color in instance.lists[node]:
            block = color // block_size
            weights[block] = weights.get(block, 0) + (
                instance.defects[node][color] + 1
            )
        total = instance.weight(node)
        beta = instance.beta(node)
        blocks = tuple(sorted(weights))
        block_lists[node] = blocks
        block_defects[node] = {
            block: int(kappa * beta * weights[block] / total)  # floor
            for block in blocks
        }
        block_weight[node] = weights
    choice_instance = OLDCInstance(graph, block_lists, block_defects, lam)
    chosen_block = base_solver(choice_instance, initial_colors, q, ledger)

    # ------------------------------------------------------------------
    # Same-block subgraph, renumbered into {0 .. block_size-1}, recurse.
    # ------------------------------------------------------------------
    cross_edges = [
        (u, v)
        for u in graph.nodes
        for v in graph.out_neighbors(u)
        if chosen_block[u] != chosen_block[v]
    ]
    sub_graph = graph.without_edges(cross_edges)
    sub_lists = {
        node: tuple(
            color - chosen_block[node] * block_size
            for color in instance.lists[node]
            if color // block_size == chosen_block[node]
        )
        for node in graph.nodes
    }
    sub_defects = {
        node: {
            color - chosen_block[node] * block_size:
                instance.defects[node][color]
            for color in instance.lists[node]
            if color // block_size == chosen_block[node]
        }
        for node in graph.nodes
    }
    sub_instance = OLDCInstance(sub_graph, sub_lists, sub_defects, block_size)
    colors = _solve(sub_instance, initial_colors, q, base_solver, kappa, lam,
                    ledger)

    final = {
        node: colors[node] + chosen_block[node] * block_size
        for node in graph.nodes
    }
    for node in graph.nodes:
        if final[node] not in instance.lists[node]:
            raise AlgorithmFailure(
                f"node {node!r}: reduction produced color {final[node]} "
                f"outside the original list"
            )
    return final
