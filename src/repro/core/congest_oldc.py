"""Theorem 1.2: oriented list defective coloring in CONGEST.

Composes Lemma 3.5 (color space reduction with splitting parameter
``lambda = 4``) with Algorithm 2 as the per-level solver, parameterized
with ``p = ceil(sqrt(lambda)) = 2`` and ``epsilon = 1/(3 * ceil(log4 C))``.
Every message is either a defective color (O(log q) bits) or a sub-list
of at most 2 colors (O(log C) bits), so the protocol is CONGEST-ready,
and the slack requirement telescopes to

    ``sum_x (d_v(x) + 1) > (2 * (1 + eps)) ** ceil(log4 C) * beta_v``,

which is below the theorem's clean ``3 * sqrt(C) * beta_v`` bound.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional

from ..coloring.instance import OLDCInstance
from ..coloring.result import ColoringResult
from ..sim.congest import BandwidthModel
from ..sim.metrics import CostLedger, ensure_ledger
from .color_space_reduction import (
    check_reduction_precondition,
    color_space_reduced_oldc,
    reduction_depth,
)
from .fast_two_sweep import fast_two_sweep

Node = Hashable
Color = int

#: The splitting parameter of Theorem 1.2's proof.
DEFAULT_LAMBDA = 4


def congest_epsilon(color_space_size: int) -> float:
    """``epsilon = 1 / (3 * ceil(log4 C))`` from the proof of Theorem 1.2."""
    levels = max(1, math.ceil(math.log(max(2, color_space_size), 4)))
    return 1.0 / (3.0 * levels)


def congest_kappa(color_space_size: int, lam: int = DEFAULT_LAMBDA) -> float:
    """Per-level slack factor ``kappa(lambda) = (1 + eps) * ceil(sqrt(lam))``."""
    return (1.0 + congest_epsilon(color_space_size)) * math.ceil(
        math.sqrt(lam)
    )


def required_slack_factor(color_space_size: int,
                          lam: int = DEFAULT_LAMBDA) -> float:
    """The exact factor ``kappa ** depth`` (always below ``3 * sqrt(C)``)."""
    kappa = congest_kappa(color_space_size, lam)
    return kappa ** reduction_depth(color_space_size, lam)


def congest_oldc(instance: OLDCInstance,
                 initial_colors: Mapping[Node, Color],
                 q: int,
                 ledger: Optional[CostLedger] = None,
                 bandwidth: Optional[BandwidthModel] = None,
                 lam: int = DEFAULT_LAMBDA,
                 check: bool = True) -> ColoringResult:
    """Solve an OLDC instance with ``weight > 3 * sqrt(C) * beta_v`` slack.

    Rounds: O(log^3 C + log* q); messages: O(log q + log C) bits.  The
    precondition actually enforced is the exact telescoped factor
    :func:`required_slack_factor`, which is slightly weaker than
    ``3 * sqrt(C)``.
    """
    ledger = ensure_ledger(ledger)
    color_space = instance.color_space_size
    epsilon = congest_epsilon(color_space)
    kappa = congest_kappa(color_space, lam)
    p = max(1, math.ceil(math.sqrt(lam)))
    if check:
        check_reduction_precondition(instance, kappa, lam)

    def base_solver(sub_instance: OLDCInstance,
                    sub_initial: Mapping[Node, Color],
                    sub_q: int,
                    sub_ledger: CostLedger) -> Dict[Node, Color]:
        restricted = {
            node: sub_initial[node] for node in sub_instance.graph.nodes
        }
        result = fast_two_sweep(
            sub_instance, restricted, sub_q, p, epsilon,
            ledger=sub_ledger, bandwidth=bandwidth, check=False,
        )
        return result.colors

    with ledger.phase("congest-oldc"):
        colors = color_space_reduced_oldc(
            instance, initial_colors, q, base_solver, kappa, lam,
            ledger=ledger, check=False,
        )
    return ColoringResult(colors=colors, orientation=None, ledger=ledger)
