"""Partial-coloring bookkeeping shared by the Section 4 reductions.

Every reduction in Sections 4.1-4.2 processes groups of nodes
sequentially and, before coloring a group, subtracts the already-colored
same-color neighbors from each node's defects ("``a_v(x)``" in the
paper), drops exhausted colors, and orients monochromatic edges from the
later-colored endpoint towards the earlier-colored one.  This class
centralizes that bookkeeping so Lemma 4.4, Lemma A.1 and Theorem 1.4 all
share one audited implementation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from ..coloring.instance import ArbdefectiveInstance
from ..sim.errors import AlgorithmFailure
from ..sim.network import Network

Node = Hashable
Color = int


class PartialColoring:
    """Tracks committed colors, per-node conflict counts and orientation."""

    def __init__(self, instance: ArbdefectiveInstance):
        self.instance = instance
        self.network: Network = instance.network
        self.colors: Dict[Node, Color] = {}
        self.orientation: Dict[Node, Tuple[Node, ...]] = {}
        #: a_v(x): committed same-color-x neighbors of v, for x in L_v.
        self._conflicts: Dict[Node, Dict[Color, int]] = {
            node: {color: 0 for color in instance.lists[node]}
            for node in instance.network
        }
        self._colored_neighbors: Dict[Node, int] = {
            node: 0 for node in instance.network
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_colored(self, node: Node) -> bool:
        return node in self.colors

    def uncolored(self) -> Tuple[Node, ...]:
        return tuple(
            node for node in self.network if node not in self.colors
        )

    def conflicts(self, node: Node, color: Color) -> int:
        """``a_v(x)``: committed neighbors of ``node`` with color ``x``."""
        return self._conflicts[node][color]

    def colored_neighbor_count(self, node: Node) -> int:
        """``deg~(v)``: how many of ``v``'s neighbors have committed."""
        return self._colored_neighbors[node]

    def residual_defect(self, node: Node, color: Color) -> int:
        """``d_v(x) - a_v(x)`` (may be negative)."""
        return self.instance.defects[node][color] - self._conflicts[node][color]

    def residual_weight(self, node: Node) -> int:
        """``sum over surviving colors of (residual defect + 1)``."""
        return sum(
            self.residual_defect(node, color) + 1
            for color in self.instance.lists[node]
            if self.residual_defect(node, color) >= 0
        )

    def residual_instance(self, nodes: Iterable[Node],
                          lists: Optional[Mapping[Node, Tuple[Color, ...]]]
                          = None) -> ArbdefectiveInstance:
        """The induced sub-instance on ``nodes`` with updated defects.

        ``lists`` optionally restricts each node's list further (Theorem
        1.4 uses per-iteration lists); colors with negative residual
        defect are dropped either way.
        """
        keep = [node for node in nodes if node not in self.colors]
        sub_lists: Dict[Node, Tuple[Color, ...]] = {}
        sub_defects: Dict[Node, Dict[Color, int]] = {}
        for node in keep:
            base = (
                lists[node] if lists is not None else self.instance.lists[node]
            )
            surviving = tuple(
                color for color in base
                if self.residual_defect(node, color) >= 0
            )
            sub_lists[node] = surviving
            sub_defects[node] = {
                color: self.residual_defect(node, color)
                for color in surviving
            }
        return ArbdefectiveInstance(
            self.network.subgraph(keep),
            sub_lists,
            sub_defects,
            self.instance.color_space_size,
        )

    # ------------------------------------------------------------------
    # Committing
    # ------------------------------------------------------------------
    def commit(self, colors: Mapping[Node, Color],
               inner_orientation: Optional[
                   Mapping[Node, Tuple[Node, ...]]] = None) -> None:
        """Commit a batch of colors computed on a residual sub-instance.

        The batch's internal orientation (if any) is kept; every
        monochromatic edge from a batch node to a *previously* committed
        node is oriented out of the batch node -- its residual defect
        already paid for those neighbors.
        """
        for node in colors:
            if node in self.colors:
                raise AlgorithmFailure(f"node {node!r} colored twice")
        for node, color in colors.items():
            inner = (
                tuple(inner_orientation.get(node, ()))
                if inner_orientation is not None
                else ()
            )
            cross = tuple(
                neighbor
                for neighbor in self.network.neighbors(node)
                if neighbor in self.colors
                and self.colors[neighbor] == color
            )
            self.orientation[node] = inner + cross
        self.colors.update(colors)
        for node, color in colors.items():
            for neighbor in self.network.neighbors(node):
                if neighbor in self.colors:
                    continue
                self._colored_neighbors[neighbor] += 1
                if color in self._conflicts[neighbor]:
                    self._conflicts[neighbor][color] += 1

    def require_complete(self, context: str) -> None:
        left = self.uncolored()
        if left:
            raise AlgorithmFailure(
                f"{context}: {len(left)} nodes left uncolored, e.g. "
                f"{list(left)[:3]!r}"
            )
