"""Command-line interface: ``python -m repro <command> ...``.

Thin wrappers over the library for the common "show me it working"
flows -- each command builds a workload, runs an algorithm, validates the
output, and prints the resource table.  Everything is seeded, so every
invocation is reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .analysis import render_table
from .coloring import check_oldc, check_proper_coloring, random_oldc_instance
from .core import (
    delta_plus_one_coloring,
    linial_reduction_baseline,
    solve_oldc_auto,
    theta_delta_plus_one_coloring,
    two_sweep,
)
from .graphs import (
    edge_coloring_from_line_coloring,
    gnp_graph,
    is_proper_edge_coloring,
    line_graph_of_network,
    neighborhood_independence,
    orient_by_id,
    random_bounded_degree_graph,
    random_ids,
    sequential_ids,
)
from .sim import CostLedger
from .substrates import randomized_delta_plus_one

#: Ledger of the most recent command, remembered so a ``--trace`` run can
#: embed the full per-phase cost record in its manifest.
_last_ledger: Optional[CostLedger] = None

#: Human-readable glosses for the vectorized engine's fallback reasons,
#: printed under ``--kernel-stats`` so the cost of each feature is visible.
_FALLBACK_NOTES = {
    "observer": "a RoundObserver pins runs to the per-node engines "
                "(use --trace for kernel-preserving telemetry)",
    "stop_when": "a stop oracle needs per-node, per-round inspection",
    "empty": "the scheduler had no node programs to batch",
    "mixed": "node programs are heterogeneous (no single kernel applies)",
    "unregistered": "no kernel is registered for this program class",
    "declined": "the kernel's prepare() declined this population",
}

#: Same idea for the sharded engine's fallback reasons (it falls
#: through to the vectorized engine, which applies its own chain).
_SHARD_NOTES = {
    "observer": "a RoundObserver pins runs to the per-node engines",
    "stop_when": "a stop oracle needs per-node, per-round inspection",
    "empty": "the scheduler had no node programs to shard",
    "mixed": "node programs are heterogeneous (no shard spec applies)",
    "unregistered": "no shard spec is registered for this program class",
    "declined": "the shard-spec builder declined this population",
    "single-shard": "shard count is 1 (set --shards or "
                    "REPRO_SIM_SHARDS to partition the graph)",
}


def _print_ledger(ledger: CostLedger, extra_rows=()) -> None:
    global _last_ledger
    _last_ledger = ledger
    rows = [
        ["rounds", ledger.rounds],
        ["messages", ledger.messages],
        ["max message bits", ledger.max_message_bits],
    ]
    rows.extend(extra_rows)
    print(render_table(["quantity", "value"], rows))


def cmd_two_sweep(args: argparse.Namespace) -> int:
    network = gnp_graph(args.n, args.density, seed=args.seed)
    graph = orient_by_id(network)
    instance = random_oldc_instance(
        graph, p=args.p, seed=args.seed, epsilon=args.epsilon
    )
    if args.id_bits > 0:
        ids = random_ids(network, seed=args.seed, bits=args.id_bits)
        q = 2 ** args.id_bits
    else:
        ids = sequential_ids(network)
        q = args.n
    ledger = CostLedger()
    if args.auto:
        result = solve_oldc_auto(instance, ids, q, ledger=ledger)
        print(f"auto plan: {result.stats}")
    elif args.epsilon > 0.0:
        from .core import fast_two_sweep

        result = fast_two_sweep(
            instance, ids, q, args.p, args.epsilon, ledger=ledger
        )
    else:
        result = two_sweep(instance, ids, q, args.p, ledger=ledger)
    violations = check_oldc(instance, result.colors)
    if violations:
        print("INVALID:", violations[:3])
        return 1
    algorithm = "fast-two-sweep" if args.epsilon > 0.0 else "two-sweep"
    print(
        f"{algorithm}: n={args.n} Delta={network.raw_max_degree()} "
        f"p={args.p} q={q} -- oriented list defective coloring verified"
    )
    _print_ledger(ledger, [["colors used", result.color_count()]])
    return 0


def cmd_delta_plus_one(args: argparse.Namespace) -> int:
    network = random_bounded_degree_graph(
        args.n, args.max_degree, seed=args.seed
    )
    ids = random_ids(network, seed=args.seed, bits=args.id_bits)
    ledger = CostLedger()
    if args.route == "thm13":
        result = delta_plus_one_coloring(network, ids=ids, ledger=ledger)
    elif args.route == "thm15":
        theta = neighborhood_independence(network, exact=len(network) <= 80)
        print(f"neighborhood independence theta = {theta}")
        result = theta_delta_plus_one_coloring(
            network, theta, ids=ids, ledger=ledger
        )
    elif args.route == "baseline":
        result = linial_reduction_baseline(network, ids=ids, ledger=ledger)
    else:  # random
        result = randomized_delta_plus_one(
            network, seed=args.seed, ledger=ledger
        )
    violations = check_proper_coloring(network, result.colors)
    if violations:
        print("INVALID:", violations[:3])
        return 1
    print(
        f"(Delta+1)-coloring via {args.route}: n={len(network)} "
        f"Delta={network.raw_max_degree()} -- proper coloring verified"
    )
    _print_ledger(ledger, [["colors used", result.color_count()]])
    return 0


def cmd_edge_coloring(args: argparse.Namespace) -> int:
    base = gnp_graph(args.n, args.density, seed=args.seed)
    line, edge_of = line_graph_of_network(base)
    if len(line) == 0:
        print("sampled graph has no edges; try a higher --density")
        return 1
    ledger = CostLedger()
    result = theta_delta_plus_one_coloring(line, theta=2, ledger=ledger)
    edge_colors = edge_coloring_from_line_coloring(result.colors, edge_of)
    if not is_proper_edge_coloring(base, edge_colors):
        print("INVALID edge coloring")
        return 1
    print(
        f"edge coloring: base n={args.n} Delta={base.raw_max_degree()} "
        f"-- {result.color_count()} colors "
        f"(budget 2*Delta-1 = {2 * base.raw_max_degree() - 1})"
    )
    _print_ledger(ledger)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from .coloring import (
        random_arbdefective_instance,
        random_defective_instance,
        save_instance,
    )

    network = gnp_graph(args.n, args.density, seed=args.seed)
    if args.kind == "oldc":
        instance = random_oldc_instance(
            orient_by_id(network), p=args.p, seed=args.seed
        )
    elif args.kind == "arbdefective":
        instance = random_arbdefective_instance(
            network, slack=args.slack, seed=args.seed,
            color_space_size=max(8, network.raw_max_degree() + 2),
        )
    else:
        instance = random_defective_instance(
            network, slack=args.slack, seed=args.seed,
            color_space_size=max(8, network.raw_max_degree() + 2),
        )
    path = save_instance(instance, args.out)
    print(
        f"wrote {args.kind} instance (n={args.n}, "
        f"C={instance.color_space_size}) to {path}"
    )
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    from .coloring import (
        ArbdefectiveInstance,
        OLDCInstance,
        check_arbdefective,
        load_instance,
        save_result,
    )
    from .core import solve_arbdefective_base

    instance = load_instance(args.instance)
    ledger = CostLedger()
    if isinstance(instance, OLDCInstance):
        network = instance.graph.network
        ids = sequential_ids(network)
        result = solve_oldc_auto(instance, ids, len(network), ledger=ledger)
        violations = check_oldc(instance, result.colors)
    elif isinstance(instance, ArbdefectiveInstance):
        network = instance.network
        ids = sequential_ids(network)
        result = solve_arbdefective_base(
            instance, ids, len(network), ledger=ledger
        )
        violations = check_arbdefective(
            instance, result.colors, result.orientation
        )
    else:
        # P_D: solve via Theorem 1.4 with the base solver, using a
        # certified theta upper bound (or the user-provided one).
        from .core import defective_from_arbdefective
        from .graphs import safe_theta

        network = instance.network
        theta = args.theta if args.theta else safe_theta(network)
        ids = sequential_ids(network)

        def arb_solver(sub, sub_initial, sub_q, inner_ledger):
            from .core import solve_arbdefective_base

            return solve_arbdefective_base(
                sub, sub_initial, sub_q, ledger=inner_ledger
            )

        try:
            result = defective_from_arbdefective(
                instance, theta, s=1.0, arb_solver=arb_solver,
                initial_colors=ids, q=len(network), ledger=ledger,
            )
        except Exception as error:  # surfaced to the user, not a crash
            print(f"could not solve P_D instance: {error}")
            return 2
        from .coloring import check_list_defective

        violations = check_list_defective(instance, result.colors)
    if violations:
        print("INVALID:", violations[:3])
        return 1
    if args.out:
        save_result(result, args.out)
        print(f"solution written to {args.out}")
    print(f"solved in {ledger.rounds} rounds; output validated")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from .analysis import write_report

    results = pathlib.Path(args.results_dir)
    if not results.is_dir():
        print(f"no such directory: {results}")
        return 1
    output = write_report(results)
    print(f"report written to {output}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        canonical_lines,
        chrome_trace,
        load_trace_file,
        summarize_trace,
        validate_trace_file,
    )

    errors = validate_trace_file(args.file)
    if errors:
        if args.json:
            import json as _json

            from .serve.schema import envelope

            print(_json.dumps(envelope(
                "trace-summary", status="invalid", file=args.file,
                errors=errors[:10],
            )))
        else:
            print(f"INVALID trace ({len(errors)} schema violations):")
            for error in errors[:10]:
                print(f"  {error}")
        return 1
    manifest, events = load_trace_file(args.file)
    if args.json:
        import json as _json

        from .serve.schema import envelope

        kinds: dict = {}
        for event in events:
            kind = event.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
        print(_json.dumps(envelope(
            "trace-summary",
            status="ok",
            file=args.file,
            events=len(events),
            by_kind=dict(sorted(kinds.items())),
            manifest=manifest,
        )))
        return 0
    if args.logical:
        # Engine-invariant byte form: what the CI equivalence diff reads.
        print(canonical_lines(events))
        return 0
    if args.chrome:
        import json as _json

        with open(args.chrome, "w", encoding="utf-8") as handle:
            _json.dump(chrome_trace(events, manifest), handle)
        print(f"chrome trace written to {args.chrome}")
        return 0
    print(summarize_trace(manifest, events))
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """Color a streamed million-node-class topology, no Network object."""
    import math
    import time

    from .graphs.streaming import (
        inflated_seed_coloring,
        stream_gnp,
        stream_grid,
        stream_regular,
        stream_ring,
        stream_tree,
    )
    from .obs.manifest import peak_rss_kb
    from .substrates.greedy import greedy_color_reduction

    build_start = time.perf_counter()
    if args.topology == "ring-stream":
        compiled = stream_ring(args.n)
    elif args.topology == "grid-stream":
        side = max(2, math.isqrt(args.n))
        compiled = stream_grid(side, side)
    elif args.topology == "tree-stream":
        depth = max(1, (args.n + 1).bit_length() - 1)
        compiled = stream_tree(depth)
    elif args.topology == "gnp-stream":
        compiled = stream_gnp(args.n, args.p, args.seed)
    else:
        compiled = stream_regular(args.n, args.degree, args.seed)
    build_s = time.perf_counter() - build_start

    delta = compiled.raw_max_degree()
    target = delta + 1
    # Floor the palette at 2 * target: the inflated palette then always
    # strictly exceeds the target, so the reduction performs real rounds
    # on every family instead of degenerating to a no-op on dense ones.
    colors, q = inflated_seed_coloring(compiled,
                                       max(args.colors, 2 * target))
    ledger = CostLedger()
    solve_start = time.perf_counter()
    result = greedy_color_reduction(compiled, colors, q, target,
                                    ledger=ledger)
    solve_s = time.perf_counter() - solve_start

    invalid = None
    if not args.no_validate:
        for i, j in compiled.edge_ids():
            if result[i] == result[j]:
                invalid = f"edge ({i}, {j}) is monochromatic"
                break
        if invalid is None and result and max(result.values()) >= target:
            invalid = f"color >= target {target}"
    rate = compiled.n / solve_s if solve_s > 0 else float("inf")
    rss_kb = peak_rss_kb()
    if args.json:
        import hashlib
        import json as _json
        from array import array

        from .serve.schema import envelope

        global _last_ledger
        _last_ledger = ledger
        # Checksum of the dense int64 color column: the cheap bit-identity
        # probe CI uses to assert sharded runs match serial ones.
        column = array("q", (result[i] for i in range(compiled.n)))
        digest = hashlib.blake2b(column.tobytes(),
                                 digest_size=16).hexdigest()
        print(_json.dumps(envelope(
            "scale-run",
            status="invalid" if invalid else "ok",
            topology={"kind": args.topology, "n": compiled.n,
                      "m": compiled.m, "max_degree": delta},
            result={"q": q, "target": target,
                    "color_count": len(set(result.values())),
                    "colors_blake2b": digest,
                    "valid": None if args.no_validate else not invalid,
                    **({"invalid_reason": invalid} if invalid else {})},
            ledger=ledger.to_dict(),
            timing={"build_s": build_s, "solve_s": solve_s,
                    "nodes_per_s": rate},
            nodes_per_s=round(rate) if rate != float("inf") else None,
            peak_rss_kb=rss_kb,
        )))
        return 1 if invalid else 0
    if invalid:
        print(f"INVALID: {invalid}")
        return 1
    print(
        f"scale: {args.topology} n={compiled.n} m={compiled.m} "
        f"Delta={delta} -- q={q} reduced to {target} colors"
        f"{'' if args.no_validate else ' (validated)'}"
    )
    _print_ledger(ledger, [
        ["build wall s", f"{build_s:.3f}"],
        ["solve wall s", f"{solve_s:.3f}"],
        ["nodes per s", f"{rate:,.0f}"],
        ["peak rss MiB", "n/a" if rss_kb is None else f"{rss_kb / 1024:.1f}"],
    ])
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent coloring daemon (see ``repro.serve``)."""
    import asyncio
    import json as _json
    import signal

    from .serve import ColoringServer

    prewarm = []
    for raw in args.prewarm or ():
        try:
            prewarm.append(_json.loads(raw))
        except _json.JSONDecodeError as error:
            print(f"bad --prewarm spec {raw!r}: {error}")
            return 2

    server = ColoringServer(
        host=args.host, port=args.port, workers=args.workers,
        mode=args.mode, max_batch=args.max_batch,
        max_queue=args.max_queue, prewarm=tuple(prewarm),
    )

    async def run() -> None:
        await server.start()
        pool = server.supervisor.stats()
        # The "serving on" line is the daemon's readiness contract:
        # benchmark harnesses parse the bound port from it (--port 0).
        print(f"serving on http://{server.host}:{server.port} "
              f"(mode={pool['mode']}, workers={pool['workers']}, "
              f"engine={pool['engine']})", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass
        await stop.wait()
        print("shutting down", flush=True)
        await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Metrics console over a live daemon or a flushed JSONL file."""
    from .obs.top import (
        render_top,
        snapshot_from_jsonl,
        snapshot_from_url,
        summarize_metrics,
        watch,
    )

    if bool(args.url) == bool(args.file):
        print("repro top: give exactly one source -- --url URL for a "
              "live daemon, or a metrics JSONL file (from --metrics)")
        return 2

    def fetch():
        if args.url:
            snap, uptime = snapshot_from_url(args.url)
            return snap, uptime, args.url
        snap, uptime = snapshot_from_jsonl(args.file)
        return snap, uptime, args.file

    if args.watch:
        return watch(fetch, interval_s=args.interval)
    try:
        snap, uptime, label = fetch()
    except (OSError, ValueError) as error:
        print(f"repro top: {error}")
        return 1
    print(render_top(summarize_metrics(snap, uptime), source=label))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} -- reproduction of Fuchs & Kuhn, "
          f"PODC 2024 (list defective coloring)")
    print(render_table(
        ["command", "runs"],
        [
            ["two-sweep", "Algorithm 1 / auto-tuned Theorem 1.1"],
            ["delta-plus-one", "Theorem 1.3 / 1.5 / baselines"],
            ["edge-coloring", "(2 Delta - 1)-edge coloring (Thm 1.5)"],
        ],
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed list defective coloring, reproduced.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command under cProfile and print the top 25 "
             "entries by cumulative time",
    )
    parser.add_argument(
        "--engine", default=None,
        choices=["fast", "reference", "vectorized", "sharded"],
        help="scheduler execution engine for every simulated round "
             "(default: fast, or the REPRO_SIM_ENGINE environment "
             "variable; vectorized batches homogeneous node programs "
             "and falls back to fast otherwise; sharded partitions "
             "large runs across worker processes and falls back to "
             "vectorized)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="shard count for the sharded engine (default: "
             "REPRO_SIM_SHARDS or 1); implies --engine sharded when no "
             "engine is chosen explicitly",
    )
    parser.add_argument(
        "--kernel-stats", action="store_true",
        help="after the command, print the vectorized engine's kernel "
             "hit/fallback/warmup counters (shows whether runs actually "
             "went through a kernel)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a structured run trace (spans for algorithms, "
             "phases, and scheduler runs plus a run manifest) and write "
             "it to PATH; works with every engine and keeps the "
             "vectorized kernels engaged",
    )
    parser.add_argument(
        "--trace-format", default="jsonl", choices=["jsonl", "chrome"],
        help="trace file format: 'jsonl' (one record per line, first "
             "line is the manifest; read it back with 'repro trace') or "
             "'chrome' (chrome://tracing / Perfetto trace_event JSON)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="flush the unified metrics registry to PATH as JSONL "
             "(one snapshot per flush; always a final flush at exit; "
             "read it back with 'repro top PATH')",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=0.0, metavar="SECONDS",
        help="also flush --metrics periodically every SECONDS while the "
             "command runs (default: 0, final flush only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ts = sub.add_parser("two-sweep", help="run Algorithm 1 / 2")
    p_ts.add_argument("--n", type=int, default=80)
    p_ts.add_argument("--density", type=float, default=0.08)
    p_ts.add_argument("--p", type=int, default=3)
    p_ts.add_argument("--seed", type=int, default=7)
    p_ts.add_argument(
        "--epsilon", type=float, default=0.0,
        help="run Algorithm 2 (Fast-Two-Sweep) with this epsilon > 0 "
             "instead of the plain sweep",
    )
    p_ts.add_argument(
        "--id-bits", type=int, default=0,
        help="color initially by random IDs with this many bits "
             "(q = 2^bits, Algorithm 2's regime); 0 means sequential "
             "IDs with q = n",
    )
    p_ts.add_argument("--auto", action="store_true",
                      help="choose (p, eps) automatically")
    p_ts.set_defaults(func=cmd_two_sweep)

    p_dp = sub.add_parser("delta-plus-one",
                          help="(Delta+1)-coloring via a chosen route")
    p_dp.add_argument("--route", default="thm13",
                      choices=["thm13", "thm15", "baseline", "random"])
    p_dp.add_argument("--n", type=int, default=32)
    p_dp.add_argument("--max-degree", type=int, default=4)
    p_dp.add_argument("--id-bits", type=int, default=20)
    p_dp.add_argument("--seed", type=int, default=5)
    p_dp.set_defaults(func=cmd_delta_plus_one)

    p_ec = sub.add_parser("edge-coloring",
                          help="(2 Delta - 1)-edge coloring")
    p_ec.add_argument("--n", type=int, default=18)
    p_ec.add_argument("--density", type=float, default=0.22)
    p_ec.add_argument("--seed", type=int, default=3)
    p_ec.set_defaults(func=cmd_edge_coloring)

    p_gen = sub.add_parser(
        "generate", help="write a random instance to a JSON file"
    )
    p_gen.add_argument("--kind", default="oldc",
                       choices=["oldc", "arbdefective", "defective"])
    p_gen.add_argument("--n", type=int, default=30)
    p_gen.add_argument("--density", type=float, default=0.15)
    p_gen.add_argument("--p", type=int, default=2)
    p_gen.add_argument("--slack", type=float, default=1.5)
    p_gen.add_argument("--seed", type=int, default=1)
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=cmd_generate)

    p_solve = sub.add_parser(
        "solve", help="solve an instance file and validate the output"
    )
    p_solve.add_argument("--instance", required=True)
    p_solve.add_argument("--out", default=None)
    p_solve.add_argument(
        "--theta", type=int, default=0,
        help="neighborhood independence bound for P_D instances "
             "(0 = compute a certified upper bound)",
    )
    p_solve.set_defaults(func=cmd_solve)

    p_rep = sub.add_parser(
        "report", help="aggregate benchmark result tables into REPORT.md"
    )
    p_rep.add_argument("--results-dir", default="benchmarks/results")
    p_rep.set_defaults(func=cmd_report)

    p_tr = sub.add_parser(
        "trace", help="validate and summarize a recorded JSONL trace"
    )
    p_tr.add_argument("file", help="trace file written by --trace")
    p_tr.add_argument(
        "--chrome", default=None, metavar="OUT",
        help="convert to chrome://tracing trace_event JSON instead of "
             "summarizing",
    )
    p_tr.add_argument(
        "--logical", action="store_true",
        help="print the engine-invariant canonical event stream "
             "(physical fields stripped) -- byte-comparable across "
             "engines",
    )
    p_tr.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable repro-result/v2 summary (shared "
             "schema with the repro.serve daemon's responses)",
    )
    p_tr.set_defaults(func=cmd_trace)

    p_sc = sub.add_parser(
        "scale",
        help="color a streamed large-n topology (CSR end to end, "
             "no Network object)",
    )
    p_sc.add_argument(
        "--topology", default="ring-stream",
        choices=["ring-stream", "grid-stream", "tree-stream",
                 "gnp-stream", "regular-stream"],
        help="streaming topology family (grid uses a sqrt(n) side, "
             "tree the depth that best matches --n)",
    )
    p_sc.add_argument("--n", type=int, default=100_000,
                      help="node count (exact for ring/gnp/regular)")
    p_sc.add_argument("--p", type=float, default=1e-5,
                      help="edge probability for gnp-stream")
    p_sc.add_argument("--degree", type=int, default=4,
                      help="degree for regular-stream")
    p_sc.add_argument("--seed", type=int, default=7)
    p_sc.add_argument(
        "--colors", type=int, default=16,
        help="initial palette size q to reduce from (floored at "
             "Delta + 1; the run performs q - Delta rounds)",
    )
    p_sc.add_argument(
        "--no-validate", action="store_true",
        help="skip the O(m) final properness scan",
    )
    p_sc.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable repro-result/v2 record (shared "
             "schema with the repro.serve daemon's responses)",
    )
    p_sc.set_defaults(func=cmd_scale)

    p_sv = sub.add_parser(
        "serve",
        help="run the persistent coloring daemon (HTTP, warm worker "
             "pool, request batching)",
    )
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=8421,
                      help="TCP port (0 picks a free one; the bound "
                           "port is printed on the 'serving on' line)")
    p_sv.add_argument("--workers", type=int, default=None,
                      help="pool size (default: REPRO_PARALLEL_WORKERS "
                           "or the CPU count)")
    p_sv.add_argument("--mode", choices=["process", "thread"],
                      default="process",
                      help="worker pool mode (thread = single in-process "
                           "lane, deterministic and fork-free)")
    p_sv.add_argument("--max-batch", type=int, default=8,
                      help="micro-batch size cap per pool dispatch")
    p_sv.add_argument("--max-queue", type=int, default=256,
                      help="admission queue bound (full queue -> 503)")
    p_sv.add_argument(
        "--prewarm", action="append", metavar="SPEC",
        help="topology spec (JSON) to build and publish at boot, e.g. "
             "'{\"kind\": \"ring-stream\", \"n\": 100000}'; repeatable",
    )
    p_sv.set_defaults(func=cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="metrics console: request rate, latency percentiles, "
             "queue/pool pressure, kernel and cache hit-rates, shard "
             "skew -- from a live daemon or a --metrics JSONL file",
    )
    p_top.add_argument(
        "file", nargs="?", default=None,
        help="metrics JSONL file written by --metrics (reads the "
             "latest flushed snapshot)",
    )
    p_top.add_argument(
        "--url", default=None, metavar="URL",
        help="scrape a live daemon instead (base URL or host:port; "
             "/stats is appended)",
    )
    p_top.add_argument(
        "--watch", action="store_true",
        help="repaint continuously until Ctrl-C",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch repaints (default: 2)",
    )
    p_top.set_defaults(func=cmd_top)

    p_info = sub.add_parser("info", help="version and command overview")
    p_info.set_defaults(func=cmd_info)
    return parser


def _run_command(args: argparse.Namespace) -> int:
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        status = profiler.runcall(args.func, args)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)
        return status
    return args.func(args)


def _write_trace(args: argparse.Namespace, tracer, status: int) -> None:
    from .obs import collect_manifest, write_chrome, write_jsonl

    seed = getattr(args, "seed", None)
    manifest = collect_manifest(
        seeds=None if seed is None else {"seed": seed},
        ledger=_last_ledger,
        argv=sys.argv[1:],
        extra={"command": args.command, "exit_status": status},
    )
    if args.trace_format == "chrome":
        write_chrome(args.trace, tracer.events, manifest)
    else:
        write_jsonl(args.trace, tracer.events, manifest)
    print(f"trace written to {args.trace} "
          f"({len(tracer.events)} records, format={args.trace_format})")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.engine is not None:
        from .sim import set_default_engine

        set_default_engine(args.engine)
    if args.shards is not None:
        from .sim import set_default_shards

        if args.shards < 1:
            parser.error("--shards must be positive")
        set_default_shards(args.shards)
        if args.engine is None:
            # Asking for shards without naming an engine means "run
            # sharded": a shard count is inert on any other engine.
            from .sim import set_default_engine

            set_default_engine("sharded")
    def run_traced() -> int:
        if args.trace is not None:
            from .obs import Tracer, use_tracer

            tracer = Tracer()
            with use_tracer(tracer):
                inner = _run_command(args)
            _write_trace(args, tracer, inner)
            return inner
        return _run_command(args)

    if args.metrics is not None:
        from .obs.metrics import MetricsFlusher

        with MetricsFlusher(args.metrics,
                            interval_s=args.metrics_interval):
            status = run_traced()
        print(f"metrics written to {args.metrics}")
    else:
        status = run_traced()
    if args.kernel_stats:
        from .sim import kernel_stats

        counters = kernel_stats()
        print(render_table(
            ["kernel stat", "value"],
            [
                ["runs", counters["runs"]],
                ["hits", counters["hits"]],
                ["fallbacks", counters["fallbacks"]],
                ["warmup_s", f"{counters['warmup_s']:.6f}"],
                ["by kernel", ", ".join(
                    f"{name} x{count}"
                    for name, count in sorted(counters["by_kernel"].items())
                ) or "-"],
                ["by backend", ", ".join(
                    f"{name} x{count}"
                    for name, count in sorted(counters["by_backend"].items())
                ) or "-"],
                ["by reason", ", ".join(
                    f"{name} x{count}"
                    for name, count in sorted(counters["by_reason"].items())
                ) or "-"],
            ],
        ))
        for reason, count in sorted(counters["by_reason"].items()):
            gloss = _FALLBACK_NOTES.get(reason, "unknown reason")
            print(f"note: {count} fallback(s) '{reason}': {gloss}")
        from .sim import shard_stats

        shards = shard_stats()
        if shards["runs"]:
            print(render_table(
                ["shard stat", "value"],
                [
                    ["runs", shards["runs"]],
                    ["engaged", shards["engaged"]],
                    ["fallbacks", shards["fallbacks"]],
                    ["halo KiB", f"{shards['halo_bytes'] / 1024:.1f}"],
                    ["barrier wait s",
                     f"{shards['barrier_wait_s']:.6f}"],
                    ["by shards", ", ".join(
                        f"x{count} @{k}"
                        for k, count in sorted(shards["by_shards"].items())
                    ) or "-"],
                    ["by mode", ", ".join(
                        f"{name} x{count}"
                        for name, count in sorted(shards["by_mode"].items())
                    ) or "-"],
                ],
            ))
            for reason, count in sorted(shards["by_reason"].items()):
                gloss = _SHARD_NOTES.get(reason, "unknown reason")
                print(f"note: {count} shard fallback(s) '{reason}': "
                      f"{gloss}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
