"""Engine-agnostic run telemetry: tracing, profiling, and manifests.

The simulator's :class:`~repro.sim.metrics.CostLedger` accounts for the
*logical* cost of a run (rounds, messages, bits -- the quantities the
paper's theorems bound).  This package accounts for the *physical* run:
which engine executed it, how much wall-clock each phase took, whether
the vectorized kernels actually fired, which seeds and environment
produced the numbers.  Three pieces:

* :class:`Tracer` (:mod:`repro.obs.tracer`) -- structured span/event
  records (run -> phase -> round-batch) emitted through zero-overhead
  hooks in all three scheduler engines; the *logical* projection of a
  trace is part of the engine-equivalence contract, while physical
  fields (wall-clock, pid, engine, kernel, worker) are stripped by
  :func:`logical_view`;
* :func:`collect_manifest` (:mod:`repro.obs.manifest`) -- the
  provenance record (engine, seeds, ``REPRO_SIM_*`` env, cache/kernel
  counters, package + git versions) written with every trace and as a
  ``*.manifest.json`` sidecar of every benchmark JSON;
* exporters and tooling (:mod:`repro.obs.export`,
  :mod:`repro.obs.schema`, :mod:`repro.obs.summary`) -- JSONL and
  Chrome ``trace_event`` writers, a dependency-free schema validator,
  and the summarizer behind the ``repro trace`` CLI subcommand.
"""

from .export import chrome_trace, write_chrome, write_jsonl, write_manifest
from .manifest import MANIFEST_VERSION, collect_manifest
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsFlusher,
    MetricsRegistry,
    counter,
    exposition,
    gauge,
    histogram,
    log_buckets,
    merge,
    metrics_enabled,
    nearest_rank,
    percentile,
    record_run,
    reset_metrics,
    snapshot,
    snapshot_delta,
)
from .schema import (
    TRACE_SCHEMA,
    load_trace_file,
    validate_events,
    validate_record,
    validate_trace_file,
)
from .summary import summarize_trace
from .tracer import (
    PHYSICAL_FIELDS,
    PHYSICAL_KINDS,
    Span,
    Tracer,
    canonical_lines,
    current_tracer,
    logical_view,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_VERSION",
    "MetricError",
    "MetricsFlusher",
    "MetricsRegistry",
    "PHYSICAL_FIELDS",
    "PHYSICAL_KINDS",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "canonical_lines",
    "chrome_trace",
    "collect_manifest",
    "counter",
    "current_tracer",
    "exposition",
    "gauge",
    "histogram",
    "load_trace_file",
    "log_buckets",
    "logical_view",
    "merge",
    "metrics_enabled",
    "nearest_rank",
    "percentile",
    "record_run",
    "reset_metrics",
    "set_tracer",
    "snapshot",
    "snapshot_delta",
    "summarize_trace",
    "use_tracer",
    "validate_events",
    "validate_record",
    "validate_trace_file",
    "write_chrome",
    "write_jsonl",
    "write_manifest",
]
