"""Process-wide metrics registry: counters, gauges, histograms.

Every layer of this repo used to keep its own private tally --
``KernelStats`` in :mod:`repro.sim.kernels`, ``shard_stats()`` in
:mod:`repro.sim.sharded`, the substrate-cache hit/miss counters, the
worker-pool and batcher dicts, the daemon's rolling latency window.
This module is the one place those quantities now land: a
dependency-free registry of :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` metrics with labeled children, an atomic
:func:`snapshot`, :func:`merge` for rebasing child-process snapshots
onto the parent, and a Prometheus text :func:`exposition` for the serve
daemon's ``GET /metrics``.

Design rules, in priority order:

*Observation must not change results.*  Metrics are write-only from the
hot paths' point of view; nothing in the engines reads them back.  The
legacy dicts (``kernel_stats()`` and friends) remain the authoritative
views -- instrumented call sites *dual-write* into this registry, so
every pre-existing surface stays bit-identical.

*One registry object, forever.*  :func:`reset_metrics` clears values in
place instead of swapping the registry, so module-level handles cached
by hot paths (the scheduler's per-engine counters) never dangle.

*Snapshots are plain data.*  ``snapshot()`` returns JSON-ready dicts --
they ship through process pools, land in manifests and JSONL flushes,
and ``merge()`` accepts them back.  Counters and histogram buckets add
under merge; gauges are last-write-wins.

The histogram quantile and the serve daemon's ``percentile()`` share one
ceil-based nearest-rank rule (:func:`nearest_rank`), so the rolling
latency window and the histogram view agree on what "p99" means.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from typing import (Any, Dict, IO, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "MetricsFlusher",
    "MetricsRegistry", "REGISTRY", "counter", "gauge", "histogram",
    "exposition", "log_buckets", "merge", "metrics_enabled",
    "nearest_rank", "percentile", "record_run", "reset_metrics",
    "sample_quantile", "set_metrics_enabled", "snapshot",
    "snapshot_delta", "LATENCY_BUCKETS", "SIZE_BUCKETS",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


class MetricError(ValueError):
    """Registry misuse: bad names, kind clashes, mismatched buckets."""


# ----------------------------------------------------------------------
# Shared rank / quantile helpers
# ----------------------------------------------------------------------
def nearest_rank(count: int, fraction: float) -> int:
    """The 1-based upper nearest rank for ``fraction`` of ``count``.

    Ceil-based: ``rank = min(count, floor(fraction * count) + 1)`` --
    equivalently ``ceil(fraction * count + 0.5)`` clamped -- the
    smallest rank with *strictly more* than ``fraction`` of the mass at
    or below it.  p50 of two samples is the *second* one, so a reported
    latency percentile never understates (contrast ``round()``, whose
    banker's rounding made p50 of ``[1, 2]`` resolve to rank 1).
    ``fraction`` must satisfy ``0 < fraction <= 1`` (a zeroth percentile
    has no nearest-rank meaning and historically leaked the minimum).
    """
    if not 0.0 < fraction <= 1.0:
        raise MetricError(
            f"fraction must be in (0, 1], got {fraction!r}"
        )
    if count <= 0:
        raise MetricError(f"count must be positive, got {count!r}")
    return min(count, math.floor(fraction * count) + 1)


def percentile(values: Sequence[float], fraction: float) -> Optional[float]:
    """Ceil-based nearest-rank percentile of ``values``.

    Returns ``None`` for an empty sequence; raises ``ValueError`` unless
    ``0 < fraction <= 1``.  This is the same rank rule
    :meth:`Histogram.quantile` applies to its buckets, so the daemon's
    rolling window and the histogram view agree.
    """
    if not 0.0 < fraction <= 1.0:
        raise MetricError(
            f"fraction must be in (0, 1], got {fraction!r}"
        )
    if not values:
        return None
    ordered = sorted(values)
    return ordered[nearest_rank(len(ordered), fraction) - 1]


def log_buckets(lo: float, hi: float, per_decade: int = 3
                ) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper bounds from ``lo`` to ``hi``.

    ``per_decade`` bounds per factor of 10, rounded to clean figures.
    The returned edges are finite; every histogram implicitly appends a
    ``+Inf`` overflow bucket.
    """
    if lo <= 0 or hi <= lo:
        raise MetricError(f"need 0 < lo < hi, got {lo!r}, {hi!r}")
    if per_decade < 1:
        raise MetricError(f"per_decade must be >= 1, got {per_decade!r}")
    edges: List[float] = []
    k = math.ceil(math.log10(lo) * per_decade - 1e-9)
    while True:
        edge = float(f"{10.0 ** (k / per_decade):.6g}")
        if edge > hi * (1 + 1e-9):
            break
        edges.append(edge)
        k += 1
    if not edges or edges[-1] < hi * (1 - 1e-9):
        edges.append(float(f"{hi:.6g}"))
    return tuple(edges)


#: Default buckets for wall-clock latencies in seconds: 100us .. 100s.
LATENCY_BUCKETS = log_buckets(1e-4, 100.0, per_decade=3)

#: Default buckets for small-count sizes (batch sizes, queue depths).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def sample_quantile(buckets: Sequence[float], counts: Sequence[int],
                    fraction: float,
                    maximum: Optional[float] = None) -> Optional[float]:
    """Nearest-rank quantile over histogram ``counts`` per ``buckets``.

    ``counts`` has one entry per finite bucket edge plus a final
    overflow entry.  Returns the upper edge of the bucket holding the
    nearest rank (clamped to the tracked ``maximum`` when known), or
    ``None`` for an empty histogram.
    """
    total = sum(counts)
    if total <= 0:
        return None
    rank = nearest_rank(total, fraction)
    cumulative = 0
    for edge, count in zip(buckets, counts):
        cumulative += count
        if rank <= cumulative:
            if maximum is not None and maximum < edge:
                return maximum
            return edge
    # Rank lands in the +Inf overflow bucket: the tracked max is the
    # only finite bound available.
    return maximum


# ----------------------------------------------------------------------
# Metric kinds
# ----------------------------------------------------------------------
def _validate_labels(labelnames: Tuple[str, ...],
                     labels: Mapping[str, Any]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Handle:
    """A bound (metric, label-values) accessor.

    Handles survive :func:`reset_metrics`: they key into the metric's
    cell dict on every update, so clearing the dict just means the next
    update recreates the cell.
    """

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "_Metric", key: Tuple[str, ...]):
        self._metric = metric
        self._key = key


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: Tuple[str, ...], registry: "MetricsRegistry"):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
                raise MetricError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._lock = registry._lock
        self._cells: Dict[Tuple[str, ...], Any] = {}

    def _default_key(self) -> Tuple[str, ...]:
        if self.labelnames:
            raise MetricError(
                f"{self.name} declares labels {self.labelnames}; "
                f"use .labels(...)"
            )
        return ()


class CounterHandle(_Handle):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self._metric.name} cannot decrease "
                f"(inc({amount!r}))"
            )
        metric = self._metric
        if not metric._registry.enabled:
            return
        with metric._lock:
            cells = metric._cells
            cells[self._key] = cells.get(self._key, 0.0) + amount

    def value(self) -> float:
        metric = self._metric
        with metric._lock:
            return metric._cells.get(self._key, 0.0)


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def labels(self, **labels: Any) -> CounterHandle:
        return CounterHandle(
            self, _validate_labels(self.labelnames, labels))

    def inc(self, amount: float = 1.0) -> None:
        CounterHandle(self, self._default_key()).inc(amount)

    def value(self) -> float:
        return CounterHandle(self, self._default_key()).value()


class GaugeHandle(_Handle):
    __slots__ = ()

    def set(self, value: float) -> None:
        metric = self._metric
        if not metric._registry.enabled:
            return
        with metric._lock:
            metric._cells[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        if not metric._registry.enabled:
            return
        with metric._lock:
            cells = metric._cells
            cells[self._key] = cells.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        metric = self._metric
        with metric._lock:
            return metric._cells.get(self._key, 0.0)


class Gauge(_Metric):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def labels(self, **labels: Any) -> GaugeHandle:
        return GaugeHandle(self, _validate_labels(self.labelnames, labels))

    def set(self, value: float) -> None:
        GaugeHandle(self, self._default_key()).set(value)

    def inc(self, amount: float = 1.0) -> None:
        GaugeHandle(self, self._default_key()).inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        GaugeHandle(self, self._default_key()).dec(amount)

    def value(self) -> float:
        return GaugeHandle(self, self._default_key()).value()


class _HistCell:
    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets: int):
        # One count per finite edge plus the +Inf overflow bucket.
        self.counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None


class HistogramHandle(_Handle):
    __slots__ = ()

    def observe(self, value: float) -> None:
        metric = self._metric
        if not metric._registry.enabled:
            return
        value = float(value)
        edges = metric.buckets
        lo, hi = 0, len(edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        with metric._lock:
            cell = metric._cells.get(self._key)
            if cell is None:
                cell = metric._cells[self._key] = _HistCell(len(edges))
            cell.counts[lo] += 1
            cell.sum += value
            cell.count += 1
            if cell.min is None or value < cell.min:
                cell.min = value
            if cell.max is None or value > cell.max:
                cell.max = value

    def quantile(self, fraction: float) -> Optional[float]:
        metric = self._metric
        with metric._lock:
            cell = metric._cells.get(self._key)
            if cell is None or cell.count == 0:
                return None
            counts = list(cell.counts)
            maximum = cell.max
        return sample_quantile(metric.buckets, counts, fraction, maximum)


class Histogram(_Metric):
    """Fixed-bucket distribution with exact sum/count and min/max.

    Buckets are upper bounds in increasing order (``+Inf`` implicit).
    The exact ``sum``/``count`` make means exact; quantiles resolve to
    bucket upper edges via the shared nearest-rank rule.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...],
                 registry: "MetricsRegistry",
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        super().__init__(name, help, labelnames, registry)
        edges = tuple(float(edge) for edge in buckets)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise MetricError(
                f"buckets must be strictly increasing, got {buckets!r}"
            )
        if math.isinf(edges[-1]):
            edges = edges[:-1]
        self.buckets = edges

    def labels(self, **labels: Any) -> HistogramHandle:
        return HistogramHandle(
            self, _validate_labels(self.labelnames, labels))

    def observe(self, value: float) -> None:
        HistogramHandle(self, self._default_key()).observe(value)

    def quantile(self, fraction: float) -> Optional[float]:
        return HistogramHandle(self, self._default_key()).quantile(fraction)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A named collection of metrics with atomic snapshot/merge."""

    def __init__(self, enabled: bool = True):
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}
        self.enabled = enabled

    # -- get-or-create -------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Iterable[str], **kwargs) -> _Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise MetricError(
                        f"{name} already registered as {existing.kind}"
                    )
                if existing.labelnames != labelnames:
                    raise MetricError(
                        f"{name} already registered with labels "
                        f"{existing.labelnames}, not {labelnames}"
                    )
                if kwargs.get("buckets") is not None and tuple(
                        float(b) for b in kwargs["buckets"]
                ) != existing.buckets:
                    raise MetricError(
                        f"{name} already registered with buckets "
                        f"{existing.buckets}"
                    )
                return existing
            metric = cls(name, help, labelnames, self, **{
                k: v for k, v in kwargs.items() if v is not None})
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames,
            buckets=tuple(buckets) if buckets is not None else None)

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """An atomic, JSON-ready copy of every metric's state."""
        with self._lock:
            out: Dict[str, Any] = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                entry: Dict[str, Any] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                }
                if metric.kind == "histogram":
                    entry["buckets"] = list(metric.buckets)
                samples = []
                for key in sorted(metric._cells):
                    labels = dict(zip(metric.labelnames, key))
                    cell = metric._cells[key]
                    if metric.kind == "histogram":
                        samples.append({
                            "labels": labels,
                            "counts": list(cell.counts),
                            "sum": cell.sum,
                            "count": cell.count,
                            "min": cell.min,
                            "max": cell.max,
                        })
                    else:
                        samples.append({"labels": labels, "value": cell})
                entry["samples"] = samples
                out[name] = entry
            return out

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (typically from a child process) in.

        Counters and histogram bucket counts add; gauges take the
        snapshot's value (last write wins); histogram min/max combine.
        Metrics absent here are created with the snapshot's shape.
        """
        for name, entry in snap.items():
            kind = entry.get("kind")
            labelnames = tuple(entry.get("labelnames", ()))
            help_text = entry.get("help", "")
            if kind == "counter":
                metric = self.counter(name, help_text, labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, help_text, labelnames)
            elif kind == "histogram":
                metric = self.histogram(
                    name, help_text, labelnames,
                    buckets=entry.get("buckets"))
            else:
                raise MetricError(
                    f"cannot merge metric {name!r} of kind {kind!r}"
                )
            for sample in entry.get("samples", ()):
                labels = sample.get("labels", {})
                key = _validate_labels(labelnames, labels)
                with self._lock:
                    cells = metric._cells
                    if kind == "counter":
                        cells[key] = cells.get(key, 0.0) + sample["value"]
                    elif kind == "gauge":
                        cells[key] = float(sample["value"])
                    else:
                        counts = sample["counts"]
                        if len(counts) != len(metric.buckets) + 1:
                            raise MetricError(
                                f"{name}: snapshot has {len(counts)} "
                                f"buckets, registry expects "
                                f"{len(metric.buckets) + 1}"
                            )
                        cell = cells.get(key)
                        if cell is None:
                            cell = cells[key] = _HistCell(
                                len(metric.buckets))
                        for i, count in enumerate(counts):
                            cell.counts[i] += count
                        cell.sum += sample["sum"]
                        cell.count += sample["count"]
                        for bound, pick in (("min", min), ("max", max)):
                            theirs = sample.get(bound)
                            if theirs is None:
                                continue
                            ours = getattr(cell, bound)
                            setattr(cell, bound,
                                    theirs if ours is None
                                    else pick(ours, theirs))

    def reset(self) -> None:
        """Zero every metric in place; registered metrics survive."""
        with self._lock:
            for metric in self._metrics.values():
                metric._cells.clear()

    # -- exposition ----------------------------------------------------
    def exposition(self) -> str:
        """Render the registry in Prometheus text format (v0.0.4)."""
        return render_exposition(self.snapshot())


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_int = int(value)
    if as_int == value and abs(value) < 1e15:
        return str(as_int)
    return repr(float(value))


def _format_labels(labels: Mapping[str, str],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [(k, str(v)) for k, v in labels.items()] + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_exposition(snap: Mapping[str, Any]) -> str:
    """Prometheus text for a :func:`snapshot`-shaped mapping."""
    lines: List[str] = []
    for name in sorted(snap):
        entry = snap[name]
        kind = entry["kind"]
        help_text = entry.get("help") or name
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in entry.get("samples", ()):
            labels = sample.get("labels", {})
            if kind == "histogram":
                edges = list(entry["buckets"]) + [math.inf]
                cumulative = 0
                for edge, count in zip(edges, sample["counts"]):
                    cumulative += count
                    le = "+Inf" if edge == math.inf else _format_value(edge)
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(labels, (('le', le),))} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} "
                    f"{sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def snapshot_delta(before: Mapping[str, Any],
                   after: Mapping[str, Any]) -> Dict[str, Any]:
    """``after - before`` in snapshot shape (mergeable into a parent).

    Counters and histogram buckets subtract; gauges keep ``after``'s
    value; histogram min/max keep ``after``'s (an approximation -- a
    delta window cannot recover its own extrema from totals).  Samples
    that did not change are dropped, so deltas stay small on the wire.
    """
    out: Dict[str, Any] = {}
    for name, entry in after.items():
        prior = before.get(name, {})
        prior_samples = {
            tuple(sorted(s.get("labels", {}).items())): s
            for s in prior.get("samples", ())
        }
        kind = entry["kind"]
        samples = []
        for sample in entry.get("samples", ()):
            key = tuple(sorted(sample.get("labels", {}).items()))
            base = prior_samples.get(key)
            if kind == "counter":
                value = sample["value"] - (
                    base["value"] if base else 0.0)
                if value:
                    samples.append(
                        {"labels": sample["labels"], "value": value})
            elif kind == "gauge":
                if base is None or base["value"] != sample["value"]:
                    samples.append(dict(sample))
            else:
                base_counts = base["counts"] if base else None
                counts = [
                    c - (base_counts[i] if base_counts else 0)
                    for i, c in enumerate(sample["counts"])
                ]
                if any(counts):
                    samples.append({
                        "labels": sample["labels"],
                        "counts": counts,
                        "sum": sample["sum"] - (
                            base["sum"] if base else 0.0),
                        "count": sample["count"] - (
                            base["count"] if base else 0),
                        "min": sample.get("min"),
                        "max": sample.get("max"),
                    })
        if samples:
            slim = {k: v for k, v in entry.items() if k != "samples"}
            slim["samples"] = samples
            out[name] = slim
    return out


#: The process-wide registry.  One object for the process lifetime --
#: reset clears it in place (see module docstring).
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "",
            labelnames: Iterable[str] = ()) -> Counter:
    """Get or create a :class:`Counter` in the process registry."""
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "",
          labelnames: Iterable[str] = ()) -> Gauge:
    """Get or create a :class:`Gauge` in the process registry."""
    return REGISTRY.gauge(name, help, labelnames)


def histogram(name: str, help: str = "",
              labelnames: Iterable[str] = (),
              buckets: Optional[Sequence[float]] = None) -> Histogram:
    """Get or create a :class:`Histogram` in the process registry."""
    return REGISTRY.histogram(name, help, labelnames, buckets)


def snapshot() -> Dict[str, Any]:
    """Atomic snapshot of the process registry (JSON-ready)."""
    return REGISTRY.snapshot()


def merge(snap: Mapping[str, Any]) -> None:
    """Merge a child-process snapshot (or delta) into this registry."""
    REGISTRY.merge(snap)


def reset_metrics() -> None:
    """Zero the process registry in place (tests, pool worker init)."""
    REGISTRY.reset()


def exposition() -> str:
    """The process registry in Prometheus text format."""
    return REGISTRY.exposition()


def metrics_enabled() -> bool:
    """Whether the process registry is recording."""
    return REGISTRY.enabled


def set_metrics_enabled(enabled: bool) -> bool:
    """Toggle recording; returns the previous state (tests only)."""
    previous = REGISTRY.enabled
    REGISTRY.enabled = bool(enabled)
    return previous


# ----------------------------------------------------------------------
# Scheduler fast path
# ----------------------------------------------------------------------
_run_handles: Dict[str, Tuple[CounterHandle, CounterHandle, CounterHandle,
                              CounterHandle, CounterHandle,
                              HistogramHandle]] = {}


def record_run(engine: str, rounds: int, messages: int, bits: int,
               broadcasts: int, wall_s: float) -> None:
    """Record one scheduler run's ledger delta (hot path, per engine).

    Handles are memoized per engine so the steady-state cost is a few
    dict updates under one lock round-trip per metric.
    """
    if not REGISTRY.enabled:
        return
    handles = _run_handles.get(engine)
    if handles is None:
        labels = {"engine": engine}
        handles = (
            counter("repro_sim_runs_total",
                    "Scheduler runs completed", ("engine",)).labels(**labels),
            counter("repro_sim_rounds_total",
                    "Synchronous rounds executed", ("engine",)
                    ).labels(**labels),
            counter("repro_sim_messages_total",
                    "Messages delivered", ("engine",)).labels(**labels),
            counter("repro_sim_bits_total",
                    "Message bits transferred", ("engine",)).labels(**labels),
            counter("repro_sim_broadcasts_total",
                    "Broadcast envelopes sent", ("engine",)).labels(**labels),
            histogram("repro_sim_run_seconds",
                      "Wall-clock seconds per scheduler run", ("engine",),
                      buckets=LATENCY_BUCKETS).labels(**labels),
        )
        _run_handles[engine] = handles
    runs, rnds, msgs, bts, bcasts, wall = handles
    runs.inc()
    if rounds:
        rnds.inc(rounds)
    if messages:
        msgs.inc(messages)
    if bits:
        bts.inc(bits)
    if broadcasts:
        bcasts.inc(broadcasts)
    wall.observe(wall_s)


# ----------------------------------------------------------------------
# JSONL flushing
# ----------------------------------------------------------------------
class MetricsFlusher:
    """Periodically append registry snapshots to a JSONL file.

    Each line is ``{"kind": "metrics", "t": <unix seconds>,
    "metrics": <snapshot>}``.  With ``interval_s > 0`` a daemon thread
    flushes on that cadence; a final flush always happens on close, so
    short runs still produce one line.  Usable as a context manager.
    """

    def __init__(self, path: str, interval_s: float = 0.0,
                 registry: Optional[MetricsRegistry] = None):
        self.path = path
        self.interval_s = float(interval_s)
        self.registry = registry if registry is not None else REGISTRY
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._handle: Optional[IO[str]] = None
        self._write_lock = threading.Lock()

    def start(self) -> "MetricsFlusher":
        self._handle = open(self.path, "w", encoding="utf-8")
        if self.interval_s > 0:
            self._thread = threading.Thread(
                target=self._loop, name="metrics-flusher", daemon=True)
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.flush()
            except (OSError, ValueError):  # pragma: no cover - defensive
                return

    def flush(self) -> None:
        """Write one snapshot line now."""
        handle = self._handle
        if handle is None:
            raise RuntimeError("flusher not started")
        line = json.dumps({
            "kind": "metrics",
            "t": time.time(),
            "metrics": self.registry.snapshot(),
        }, sort_keys=True)
        with self._write_lock:
            handle.write(line + "\n")
            handle.flush()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._handle is not None:
            try:
                self.flush()
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "MetricsFlusher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_metrics_jsonl(path: str) -> List[Dict[str, Any]]:
    """All ``kind == "metrics"`` lines from a JSONL file, in order.

    Tolerates interleaved trace/manifest lines (the ``--metrics`` flag
    can point at the same stream as a trace) and skips malformed lines.
    """
    out: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("kind") == "metrics":
                out.append(record)
    return out
