"""Trace exporters: JSONL (the native format) and Chrome ``trace_event``.

JSONL is the contractual format (schema in :mod:`repro.obs.schema`): one
record per line, the manifest first.  The Chrome format loads into
``chrome://tracing`` / Perfetto for a flame-graph view of phase nesting
and worker lanes; it is a lossy *view* (attrs move into ``args``), so
round-tripping goes through JSONL, never through Chrome.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .tracer import SPAN_KINDS


def write_jsonl(path: str, events: Iterable[Dict[str, Any]],
                manifest: Optional[Dict[str, Any]] = None) -> str:
    """Write ``manifest`` (if any) then one record per line; returns
    ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        if manifest is not None:
            handle.write(json.dumps(manifest, sort_keys=True, default=repr))
            handle.write("\n")
        for record in events:
            handle.write(json.dumps(record, sort_keys=True, default=repr))
            handle.write("\n")
    return path


def chrome_trace(events: Iterable[Dict[str, Any]],
                 manifest: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """The ``chrome://tracing`` JSON object for a record stream.

    Spans become complete (``ph: "X"``) slices with microsecond
    timestamps rebased to the earliest span; point events and kernel
    annotations become instants (``ph: "i"``).  Worker-attributed
    records land on their worker's thread lane so sweep skew is visible
    at a glance.
    """
    records = list(events)
    starts = [
        record["t0"] for record in records
        if isinstance(record.get("t0"), (int, float))
    ]
    epoch = min(starts) if starts else 0.0
    pid = manifest.get("pid", 0) if manifest else 0
    trace_events: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        tid = record.get("worker", 0)
        args = {
            key: value for key, value in record.items()
            if key not in ("kind", "name", "t0", "wall_s")
        }
        if kind in SPAN_KINDS and "t0" in record:
            trace_events.append({
                "name": f"{kind}:{record.get('name', '')}",
                "cat": kind,
                "ph": "X",
                "ts": round((record["t0"] - epoch) * 1e6, 3),
                "dur": round(record.get("wall_s", 0.0) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        else:
            trace_events.append({
                "name": f"{kind}:{record.get('name', '')}",
                "cat": kind or "event",
                "ph": "i",
                "s": "t",
                "ts": round((record.get("t0", epoch) - epoch) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    payload: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if manifest is not None:
        payload["metadata"] = manifest
    return payload


def write_chrome(path: str, events: Iterable[Dict[str, Any]],
                 manifest: Optional[Dict[str, Any]] = None) -> str:
    """Write the Chrome ``trace_event`` file; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events, manifest), handle, indent=2,
                  sort_keys=True, default=repr)
        handle.write("\n")
    return path


def write_manifest(path: str, manifest: Dict[str, Any]) -> str:
    """Write a standalone ``*.manifest.json`` sidecar; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True, default=repr)
        handle.write("\n")
    return path
