"""Trace summarization backing the ``repro trace`` CLI subcommand.

Turns a JSONL trace (manifest + records) into the three tables an
operator actually wants from a run:

* **per-phase profile** -- wall-clock, rounds, messages, bits and
  broadcasts per named phase, aggregated over invocations, sorted by
  wall-clock (where did the time go, and did it go where the theory
  says the rounds went?);
* **kernel hit-rate** -- how many scheduler runs went through a
  vectorized kernel vs fell back, by kernel and by fallback reason
  (is the benchmark measuring the code path it thinks it is?);
* **worker skew** -- per-worker wall-clock totals for merged parallel
  sweeps (is one straggler worker hiding the speedup?).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple


def _phase_profile(events: Iterable[Dict[str, Any]]
                   ) -> List[Tuple[str, int, float, int, int, int, int]]:
    """``(name, invocations, wall_s, rounds, messages, bits, broadcasts)``
    per phase span name, sorted by wall-clock descending."""
    totals: Dict[str, List[Any]] = {}
    for record in events:
        if record.get("kind") != "phase":
            continue
        row = totals.setdefault(record.get("name", "?"),
                                [0, 0.0, 0, 0, 0, 0])
        row[0] += 1
        row[1] += record.get("wall_s", 0.0) or 0.0
        row[2] += record.get("rounds", 0) or 0
        row[3] += record.get("messages", 0) or 0
        row[4] += record.get("bits", 0) or 0
        row[5] += record.get("broadcasts", 0) or 0
    return sorted(
        ((name, *row) for name, row in totals.items()),
        key=lambda entry: (-entry[2], entry[0]),
    )


def _kernel_rate(events: Iterable[Dict[str, Any]]
                 ) -> Dict[str, Any]:
    """Hit/fallback counts over the trace's vectorized scheduler runs."""
    runs = hits = fallbacks = 0
    by_kernel: Dict[str, int] = {}
    by_backend: Dict[str, int] = {}
    by_reason: Dict[str, int] = {}
    for record in events:
        if record.get("kind") != "run" \
                or record.get("engine") != "vectorized":
            continue
        runs += 1
        kernel = record.get("kernel")
        if kernel:
            hits += 1
            by_kernel[kernel] = by_kernel.get(kernel, 0) + 1
            backend = record.get("backend") or "python"
            key = f"{kernel}[{backend}]"
            by_backend[key] = by_backend.get(key, 0) + 1
        else:
            fallbacks += 1
            reason = record.get("fallback") or "unknown"
            by_reason[reason] = by_reason.get(reason, 0) + 1
    return {
        "runs": runs,
        "hits": hits,
        "fallbacks": fallbacks,
        "hit_rate": (hits / runs) if runs else None,
        "by_kernel": by_kernel,
        "by_backend": by_backend,
        "by_reason": by_reason,
    }


def _worker_skew(events: Iterable[Dict[str, Any]]
                 ) -> List[Tuple[Any, int, float]]:
    """``(worker, run_spans, wall_s)`` per worker id, busiest first."""
    totals: Dict[Any, List[Any]] = {}
    for record in events:
        worker = record.get("worker")
        if worker is None or record.get("kind") != "run":
            continue
        row = totals.setdefault(worker, [0, 0.0])
        row[0] += 1
        row[1] += record.get("wall_s", 0.0) or 0.0
    return sorted(
        ((worker, count, wall) for worker, (count, wall) in totals.items()),
        key=lambda entry: -entry[2],
    )


def summarize_trace(manifest: Optional[Dict[str, Any]],
                    events: List[Dict[str, Any]]) -> str:
    """The multi-line human summary printed by ``repro trace``."""
    from ..analysis import render_table

    lines: List[str] = []
    if manifest is not None:
        git = manifest.get("git") or {}
        commit = git.get("commit")
        lines.append(
            f"trace: repro {manifest.get('version')} "
            f"engine={manifest.get('engine')} "
            f"python={manifest.get('python')} "
            f"git={commit[:12] if commit else 'n/a'}"
            f"{'+dirty' if git.get('dirty') else ''}"
        )
        env = manifest.get("env") or {}
        if env:
            lines.append("env: " + " ".join(
                f"{key}={value}" for key, value in sorted(env.items())
            ))
        rss = manifest.get("rss") or {}
        if rss.get("max_rss_kb") is not None:
            children = rss.get("children_max_rss_kb")
            lines.append(
                f"peak rss: {rss['max_rss_kb'] / 1024:.1f} MiB"
                + (f" (+{children / 1024:.1f} MiB children)"
                   if children else "")
            )
    runs = sum(1 for record in events if record.get("kind") == "run")
    total_wall = sum(
        record.get("wall_s", 0.0) or 0.0
        for record in events
        if record.get("kind") == "run"
    )
    lines.append(
        f"{len(events)} records, {runs} scheduler run(s), "
        f"{total_wall:.4f}s summed run wall-clock"
    )

    profile = _phase_profile(events)
    if profile:
        lines.append("")
        lines.append(render_table(
            ["phase", "invocations", "wall_s", "rounds", "messages",
             "bits", "broadcasts"],
            [
                [name, invocations, f"{wall:.4f}", rounds, messages,
                 bits, broadcasts]
                for name, invocations, wall, rounds, messages, bits,
                broadcasts in profile
            ],
        ))

    rate = _kernel_rate(events)
    if rate["runs"]:
        kernels = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(rate["by_backend"].items())
        ) or "-"
        reasons = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(rate["by_reason"].items())
        ) or "-"
        lines.append("")
        lines.append(
            f"vectorized runs: {rate['hits']}/{rate['runs']} kernel hits "
            f"({rate['hit_rate']:.0%}); kernels [{kernels}]; "
            f"fallbacks [{reasons}]"
        )

    skew = _worker_skew(events)
    if skew:
        walls = [wall for _, _, wall in skew]
        busiest, idlest = max(walls), min(walls)
        lines.append("")
        lines.append(render_table(
            ["worker", "run spans", "wall_s"],
            [[worker, count, f"{wall:.4f}"] for worker, count, wall in skew],
        ))
        if idlest > 0 and len(skew) > 1:
            lines.append(
                f"worker skew: busiest/idlest = {busiest / idlest:.2f}x"
            )

    metrics = (manifest or {}).get("metrics")
    if metrics:
        from .top import render_top, summarize_metrics

        lines.append("")
        lines.append("metrics registry at capture:")
        lines.append(render_top(summarize_metrics(metrics)))
    return "\n".join(lines)
