"""Structured run tracing: spans and events with a logical/physical split.

A :class:`Tracer` collects a flat list of JSON-serializable records
describing one traced run: nested *spans* (a scheduler run, a
``CostLedger.phase`` scope, an algorithm invocation) and point *events*
(the aggregate round batch a scheduler run produced).  The instrumented
layers -- :mod:`repro.sim.scheduler`, :mod:`repro.sim.metrics`, the
Two-Sweep wrappers -- fetch the process-current tracer through
:func:`current_tracer` and do nothing when none is installed, so tracing
is strictly pay-for-what-you-use: a disabled hook is one ``None`` check
per scheduler *run* (never per round or per node), and crucially it
never changes which engine executes the run -- the vectorized engine
keeps its kernels under tracing instead of falling back the way an
attached :class:`~repro.sim.tracing.RoundObserver` forces it to.

Every record field is either **logical** or **physical**:

* logical fields describe *what the protocol did* -- span structure
  (``kind`` / ``name`` / ``span`` / ``parent``), round/message/bit/
  broadcast totals, instance parameters.  The engine-equivalence
  invariant extends to them: the logical view of a trace is
  byte-identical across the reference, fast, and vectorized engines
  (see :func:`canonical_lines`).
* physical fields describe *how the hardware ran it* -- wall-clock
  (``t0`` / ``wall_s``), ``pid``, ``engine``, ``kernel``, ``fallback``,
  ``backend``, ``warmup_s``, ``worker``.  They differ run to run and engine to
  engine, and :func:`logical_view` strips them.

Records of a wholly physical *kind* (currently ``kernel`` annotations,
which only the vectorized engine emits) are dropped from the logical
view entirely and never consume a span id, so their presence cannot
shift the ids of the logical records around them.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

#: Record fields describing physical execution; stripped by
#: :func:`logical_view` so traces can be compared across engines.
PHYSICAL_FIELDS = frozenset({
    "t0", "wall_s", "pid", "engine", "kernel", "fallback", "backend",
    "warmup_s", "worker", "rss_kb",
    # Sharded-engine execution metadata: shard layout, halo traffic,
    # and barrier timing vary with the shard count, never the protocol.
    "shard", "shards", "halo_bytes", "barrier_wait_s",
})

#: Record kinds that are wholly physical: engine-dependent annotations
#: dropped from the logical view as complete records.
PHYSICAL_KINDS = frozenset({"kernel"})

#: Record kinds that open a span (consume a span id, carry timing).
SPAN_KINDS = frozenset({"run", "phase", "algorithm"})

#: Point-event kinds (no span id of their own, nested under ``parent``).
EVENT_KINDS = frozenset({"round-batch"})


class Span:
    """Handle yielded by :meth:`Tracer.span` to attach late attributes.

    Attributes set on :attr:`attrs` inside the ``with`` block land on the
    span's record when the scope closes -- the natural place for totals
    that are only known at the end (ledger deltas, outcome flags).
    """

    __slots__ = ("id", "attrs")

    def __init__(self, span_id: int):
        self.id = span_id
        self.attrs: Dict[str, Any] = {}


class Tracer:
    """Collects span/event records for one traced run.

    Not thread-safe (the simulator is single-threaded per process);
    process-pool workers each build their own tracer and the parent
    merges the shipped records with :meth:`merge`.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._seq = 0
        self._stack: List[int] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, kind: str, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; the record is appended when it closes.

        Records therefore appear in *completion* order (children before
        parents), which is deterministic and engine-independent; the
        ``span``/``parent`` ids reconstruct the tree.  The span's record
        survives exceptions raised inside the scope.
        """
        self._seq += 1
        handle = Span(self._seq)
        parent = self._stack[-1] if self._stack else 0
        self._stack.append(handle.id)
        t0 = time.perf_counter()
        try:
            yield handle
        finally:
            self._stack.pop()
            record: Dict[str, Any] = {
                "kind": kind,
                "name": name,
                "span": handle.id,
                "parent": parent,
            }
            record.update(attrs)
            record.update(handle.attrs)
            record["t0"] = t0
            record["wall_s"] = time.perf_counter() - t0
            self.events.append(record)

    def event(self, kind: str, name: str, **attrs: Any) -> Dict[str, Any]:
        """Append a point event nested under the current span.

        Point events carry no span id of their own, so interleaving them
        with spans never perturbs the id sequence.
        """
        record: Dict[str, Any] = {
            "kind": kind,
            "name": name,
            "parent": self._stack[-1] if self._stack else 0,
        }
        record.update(attrs)
        self.events.append(record)
        return record

    def annotate(self, name: str, **attrs: Any) -> Dict[str, Any]:
        """Append a wholly physical ``kernel``-kind annotation.

        These records document engine internals (which kernel ran, how
        long its warmup took, why a run fell back) and are invisible to
        the logical view.
        """
        record: Dict[str, Any] = {
            "kind": "kernel",
            "name": name,
            "parent": self._stack[-1] if self._stack else 0,
        }
        record.update(attrs)
        self.events.append(record)
        return record

    # ------------------------------------------------------------------
    # Merging (process-pool workers)
    # ------------------------------------------------------------------
    def merge(self, events: Iterable[Dict[str, Any]],
              **extra: Any) -> List[Dict[str, Any]]:
        """Fold another tracer's records into this one.

        Span/parent ids are rebased past this tracer's counter so they
        stay unique; root records are re-parented under the currently
        open span (if any); ``extra`` attributes -- typically
        ``worker=<pid>`` -- are stamped on every merged record.  Returns
        the merged (rebased) records.
        """
        base = self._seq
        top = self._stack[-1] if self._stack else 0
        highest = 0
        merged: List[Dict[str, Any]] = []
        for original in events:
            record = dict(original)
            span_id = record.get("span")
            if span_id:
                record["span"] = span_id + base
                if span_id > highest:
                    highest = span_id
            parent = record.get("parent", 0)
            record["parent"] = parent + base if parent else top
            record.update(extra)
            self.events.append(record)
            merged.append(record)
        self._seq = base + highest
        return merged


# ----------------------------------------------------------------------
# Logical view: the engine-invariant projection of a trace
# ----------------------------------------------------------------------
def logical_view(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Strip physical fields (and wholly physical records) from a trace.

    What remains is the protocol's logical story -- and by the engine
    contract it is identical whichever engine executed the run.
    """
    view = []
    for record in events:
        if record.get("kind") in PHYSICAL_KINDS:
            continue
        view.append({
            key: value for key, value in record.items()
            if key not in PHYSICAL_FIELDS
        })
    return view


def canonical_lines(events: Iterable[Dict[str, Any]]) -> str:
    """The logical view as sorted-key JSON lines: the byte-comparable
    form the equivalence suite and the CI trace diff both use."""
    import json

    return "\n".join(
        json.dumps(record, sort_keys=True, default=repr)
        for record in logical_view(events)
    )


# ----------------------------------------------------------------------
# The process-current tracer
# ----------------------------------------------------------------------
_tracer: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` (tracing disabled)."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the scope of the ``with`` block.

    ``None`` installs a fresh :class:`Tracer`.  On exit the previous
    tracer (including "none installed") is restored exactly.
    """
    active = tracer if tracer is not None else Tracer()
    saved = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(saved)


def tracing_pid() -> int:
    """This process's pid (exporters stamp it on physical records)."""
    return os.getpid()
