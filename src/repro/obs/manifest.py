"""Run manifests: the provenance record written next to every trace.

A benchmark JSON or trace file without provenance answers *what* the
numbers were but not *under which conditions* -- engine, seeds,
``REPRO_SIM_*`` environment, cache and kernel counters, package and git
versions.  :func:`collect_manifest` gathers all of that into one
JSON-serializable dict (``kind: "manifest"``), written as the first line
of a JSONL trace, the ``metadata`` of a Chrome trace, or a
``*.manifest.json`` sidecar next to a ``BENCH_*.json``.

Everything here is best-effort and dependency-free: a missing git
binary, a non-repo working directory, or an import failure degrades to
``None`` fields, never to an exception -- provenance collection must not
be able to break the run it documents.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Mapping, Optional

#: Environment prefixes captured into the manifest (the knobs that can
#: change what a run measures).
ENV_PREFIXES = ("REPRO_SIM_", "REPRO_PARALLEL")

#: Bumped when the manifest's key conventions change shape.
MANIFEST_VERSION = 1


def _git_state() -> Optional[Dict[str, Any]]:
    """``{"commit", "dirty"}`` for the current directory, or ``None``."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        if commit.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5,
        )
        return {
            "commit": commit.stdout.strip(),
            "dirty": bool(status.returncode == 0 and status.stdout.strip()),
        }
    except (OSError, subprocess.SubprocessError):
        return None


def _captured_env() -> Dict[str, str]:
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith(ENV_PREFIXES)
    }


def _kernel_counters() -> Optional[Dict[str, Any]]:
    try:
        from ..sim.kernels import kernel_stats

        return kernel_stats()
    except ImportError:  # pragma: no cover - sim always ships
        return None


def _arrays_state() -> Optional[Dict[str, Any]]:
    """Kernel array-backend provenance: enabled + NumPy version.

    ``{"enabled": False, "numpy": None}`` means the pure-Python columns
    ran (NumPy missing or ``REPRO_SIM_ARRAYS=0``); the ``kernels``
    section's ``by_backend`` counters say which kernels actually took
    the array path.
    """
    try:
        from ..sim import arrays

        return {
            "enabled": arrays.arrays_enabled(),
            "numpy": arrays.numpy_version(),
        }
    except ImportError:  # pragma: no cover - sim always ships
        return None


def _sharded_state() -> Optional[Dict[str, Any]]:
    """Sharded-engine provenance: shard count plus run/halo counters.

    ``shards`` is the resolved default shard count (override, then
    ``REPRO_SIM_SHARDS``, then 1); ``stats`` is the cumulative
    :func:`repro.sim.sharded.shard_stats` snapshot, whose ``last_run``
    entry carries the per-shard halo-bytes and barrier-wait columns for
    the most recent engaged run.
    """
    try:
        from ..sim import sharded

        return {
            "shards": sharded.default_shards(),
            "stats": sharded.shard_stats(),
        }
    except ImportError:  # pragma: no cover - sim always ships
        return None


def peak_rss_kb(children: bool = False) -> Optional[int]:
    """Peak resident set size in KiB, or ``None`` where unmeasurable.

    ``resource.getrusage`` reports ``ru_maxrss`` in kilobytes on Linux
    and in bytes on macOS; this normalizes to KiB.  ``children=True``
    reports the high-water mark across reaped child processes (pool
    workers) instead of this process.  A *physical* quantity: it varies
    run to run and never participates in logical-stream comparisons.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    who = resource.RUSAGE_CHILDREN if children else resource.RUSAGE_SELF
    try:
        peak = resource.getrusage(who).ru_maxrss
    except (OSError, ValueError):  # pragma: no cover - defensive
        return None
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak //= 1024
    return int(peak)


def _rss_state() -> Optional[Dict[str, Any]]:
    """Peak RSS of this process and its reaped children, in KiB."""
    own = peak_rss_kb()
    if own is None:
        return None
    return {
        "max_rss_kb": own,
        "children_max_rss_kb": peak_rss_kb(children=True),
    }


def _metrics_state() -> Optional[Dict[str, Any]]:
    """The unified metrics registry's snapshot, or ``None`` if empty.

    An empty registry (nothing instrumented ran) is recorded as
    ``None`` rather than ``{}`` so manifests stay compact for runs that
    predate -- or never touch -- the metrics layer.
    """
    try:
        from .metrics import snapshot

        snap = snapshot()
        return snap or None
    except ImportError:  # pragma: no cover - obs always ships
        return None


def _cache_state() -> Optional[Dict[str, Any]]:
    try:
        from ..substrates import cache as substrate_cache

        return {
            "enabled": substrate_cache.cache_enabled(),
            "registries": substrate_cache.registry_sizes(),
            "counters": substrate_cache.cache_counters(),
            "disk": substrate_cache.disk_state(),
        }
    except ImportError:  # pragma: no cover - substrates always ship
        return None


def collect_manifest(engine: Optional[str] = None,
                     seeds: Optional[Mapping[str, Any]] = None,
                     ledger: Optional[Any] = None,
                     argv: Optional[Any] = None,
                     extra: Optional[Mapping[str, Any]] = None
                     ) -> Dict[str, Any]:
    """Gather the provenance of the current process into one dict.

    ``engine`` defaults to the scheduler's resolved default;  ``seeds``
    is whatever parameter mapping the caller wants recorded verbatim;
    ``ledger`` (a :class:`~repro.sim.metrics.CostLedger`) contributes its
    :meth:`~repro.sim.metrics.CostLedger.to_dict` as the run's logical
    cost record; ``extra`` keys are merged last and win.
    """
    if engine is None:
        try:
            from ..sim.scheduler import default_engine

            engine = default_engine()
        except ImportError:  # pragma: no cover - sim always ships
            engine = None
    try:
        from .. import __version__ as version
    except ImportError:  # pragma: no cover - package always importable
        version = None
    manifest: Dict[str, Any] = {
        "kind": "manifest",
        "manifest_version": MANIFEST_VERSION,
        "tool": "repro",
        "version": version,
        "created_unix_s": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "pid": os.getpid(),
        "argv": list(argv) if argv is not None else list(sys.argv),
        "engine": engine,
        "seeds": dict(seeds) if seeds is not None else None,
        "env": _captured_env(),
        "git": _git_state(),
        "kernels": _kernel_counters(),
        "arrays": _arrays_state(),
        "sharded": _sharded_state(),
        "caches": _cache_state(),
        "rss": _rss_state(),
        "metrics": _metrics_state(),
        "ledger": ledger.to_dict() if ledger is not None else None,
    }
    if extra:
        manifest.update(extra)
    return manifest
