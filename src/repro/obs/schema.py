"""The trace record schema and a dependency-free validator.

The emitted JSONL is consumed by CI (schema smoke + engine diff), by the
``repro trace`` summarizer, and by ad-hoc ``jq``/pandas analysis, so the
shape is contractual.  The container stays deliberately tiny: every line
is one JSON object, the first line *may* be a ``manifest`` record, and
every other line is a span, point event, or kernel annotation as emitted
by :class:`~repro.obs.tracer.Tracer`.

``jsonschema`` is not a dependency of this repository, so validation is
hand-rolled: :data:`TRACE_SCHEMA` documents the contract declaratively
(it *is* valid JSON Schema, usable by external tooling), and
:func:`validate_events` enforces the same rules in plain Python.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .tracer import EVENT_KINDS, PHYSICAL_KINDS, SPAN_KINDS

#: Every record kind a trace file may contain.
RECORD_KINDS = (
    tuple(sorted(SPAN_KINDS)) + tuple(sorted(EVENT_KINDS))
    + tuple(sorted(PHYSICAL_KINDS)) + ("manifest",)
)

#: Ledger-delta fields required on every ``round-batch`` event.
BATCH_FIELDS = ("rounds", "messages", "bits", "max_message_bits",
                "broadcasts")

#: Declarative form of the contract (JSON Schema draft-07 subset).
TRACE_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro trace record",
    "type": "object",
    "required": ["kind"],
    "properties": {
        "kind": {"enum": list(RECORD_KINDS)},
        "name": {"type": "string"},
        "span": {"type": "integer", "minimum": 1},
        "parent": {"type": "integer", "minimum": 0},
        "t0": {"type": "number"},
        "wall_s": {"type": "number", "minimum": 0},
        "rounds": {"type": "integer", "minimum": 0},
        "messages": {"type": "integer", "minimum": 0},
        "bits": {"type": "integer", "minimum": 0},
        "max_message_bits": {"type": "integer", "minimum": 0},
        "broadcasts": {"type": "integer", "minimum": 0},
        "engine": {"type": ["string", "null"]},
        "kernel": {"type": ["string", "null"]},
        "worker": {"type": "integer"},
    },
}


def _is_count(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def validate_record(record: Any, index: int = 0) -> List[str]:
    """The schema violations of one record (empty list = valid)."""
    where = f"record {index}"
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    errors: List[str] = []
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        errors.append(f"{where}: unknown kind {kind!r}")
        return errors
    if kind == "manifest":
        if index != 0:
            errors.append(f"{where}: manifest must be the first record")
        return errors
    if not isinstance(record.get("name"), str):
        errors.append(f"{where} ({kind}): missing string 'name'")
    if not _is_count(record.get("parent")):
        errors.append(f"{where} ({kind}): missing integer 'parent'")
    if kind in SPAN_KINDS:
        span = record.get("span")
        if not _is_count(span) or span < 1:
            errors.append(f"{where} ({kind}): missing span id")
        for field in ("t0", "wall_s"):
            if not isinstance(record.get(field), (int, float)) \
                    or isinstance(record.get(field), bool):
                errors.append(f"{where} ({kind}): missing numeric "
                              f"'{field}'")
    elif kind in EVENT_KINDS:
        for field in BATCH_FIELDS:
            if not _is_count(record.get(field)):
                errors.append(f"{where} ({kind}): missing count "
                              f"'{field}'")
    return errors


def validate_events(events: Iterable[Any]) -> List[str]:
    """All schema violations across a record stream, with span-reference
    checks (a record's ``parent`` must name an emitted span or 0)."""
    errors: List[str] = []
    span_ids = set()
    parents: List[Tuple[int, int]] = []
    for index, record in enumerate(events):
        errors.extend(validate_record(record, index))
        if isinstance(record, dict):
            span = record.get("span")
            if _is_count(span):
                if span in span_ids:
                    errors.append(f"record {index}: duplicate span id "
                                  f"{span}")
                span_ids.add(span)
            parent = record.get("parent")
            if _is_count(parent) and parent:
                parents.append((index, parent))
    for index, parent in parents:
        if parent not in span_ids:
            errors.append(
                f"record {index}: parent {parent} names no span"
            )
    return errors


def load_trace_file(path: str
                    ) -> Tuple[Optional[Dict[str, Any]],
                               List[Dict[str, Any]]]:
    """Read a JSONL trace: ``(manifest_or_None, event_records)``.

    Raises ``ValueError`` on malformed JSON (with the line number).
    """
    manifest: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {error}"
                ) from error
            if (manifest is None and not events
                    and isinstance(record, dict)
                    and record.get("kind") == "manifest"):
                manifest = record
                continue
            events.append(record)
    return manifest, events


def validate_trace_file(path: str) -> List[str]:
    """Schema violations of a JSONL trace file (empty list = valid)."""
    try:
        manifest, events = load_trace_file(path)
    except (OSError, ValueError) as error:
        return [str(error)]
    stream = ([manifest] if manifest is not None else []) + events
    return validate_events(stream)
