"""Live metrics console: the ``repro top`` command.

Turns a registry snapshot -- scraped from a running daemon's ``/stats``
endpoint or read back from a ``--metrics`` JSONL flush file -- into a
small operator dashboard: request throughput and latency percentiles,
queue pressure, pool occupancy, kernel hit-rate, cache hit-rates, and
shard skew.  One-shot by default; ``--watch`` repaints in place.

The module is deliberately source-agnostic: :func:`summarize_metrics`
consumes the plain-dict snapshot shape produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, wherever it came
from, so the same renderer serves live daemons, flushed batch runs, and
tests.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .metrics import read_metrics_jsonl, sample_quantile

__all__ = [
    "summarize_metrics",
    "render_top",
    "snapshot_from_url",
    "snapshot_from_jsonl",
    "watch",
]


# ----------------------------------------------------------------------
# Snapshot accessors
# ----------------------------------------------------------------------
def _samples(snap: Mapping[str, Any], name: str) -> List[Dict[str, Any]]:
    entry = snap.get(name)
    if not isinstance(entry, Mapping):
        return []
    return list(entry.get("samples", ()))


def _matches(labels: Mapping[str, str],
             where: Optional[Mapping[str, str]]) -> bool:
    if not where:
        return True
    return all(labels.get(k) == v for k, v in where.items())


def _sum_values(snap: Mapping[str, Any], name: str,
                where: Optional[Mapping[str, str]] = None) -> float:
    total = 0.0
    for sample in _samples(snap, name):
        if _matches(sample.get("labels", {}), where):
            total += float(sample.get("value", 0.0))
    return total


def _gauge(snap: Mapping[str, Any], name: str) -> Optional[float]:
    samples = _samples(snap, name)
    if not samples:
        return None
    return float(samples[0].get("value", 0.0))


def _hist(snap: Mapping[str, Any], name: str) -> Dict[str, Any]:
    """Aggregate a histogram's samples into count/sum/p50/p99."""
    entry = snap.get(name)
    if not isinstance(entry, Mapping):
        return {"count": 0, "sum": 0.0, "p50": None, "p99": None,
                "mean": None}
    buckets = list(entry.get("buckets", ()))
    counts: Optional[List[int]] = None
    total_sum, total_count = 0.0, 0
    maximum: Optional[float] = None
    for sample in entry.get("samples", ()):
        sample_counts = list(sample.get("counts", ()))
        if counts is None:
            counts = [0] * len(sample_counts)
        for i, c in enumerate(sample_counts):
            counts[i] += int(c)
        total_sum += float(sample.get("sum", 0.0))
        total_count += int(sample.get("count", 0))
        sample_max = sample.get("max")
        if sample_max is not None and not (
                isinstance(sample_max, float) and math.isnan(sample_max)):
            maximum = (sample_max if maximum is None
                       else max(maximum, sample_max))
    if not counts or total_count == 0:
        return {"count": 0, "sum": 0.0, "p50": None, "p99": None,
                "mean": None}
    return {
        "count": total_count,
        "sum": total_sum,
        "p50": sample_quantile(buckets, counts, 0.50, maximum),
        "p99": sample_quantile(buckets, counts, 0.99, maximum),
        "mean": total_sum / total_count,
    }


# ----------------------------------------------------------------------
# Summary
# ----------------------------------------------------------------------
def summarize_metrics(snap: Mapping[str, Any],
                      uptime_s: Optional[float] = None) -> Dict[str, Any]:
    """Reduce a registry snapshot to the quantities ``repro top`` shows.

    ``uptime_s`` (from ``/stats`` or the ``repro_uptime_seconds`` gauge)
    turns cumulative counters into naive whole-life rates; watch mode
    replaces those with deltas between repaints.
    """
    if uptime_s is None:
        uptime_s = _gauge(snap, "repro_uptime_seconds")

    http_total = _sum_values(snap, "repro_http_requests_total")
    http_ok = _sum_values(snap, "repro_http_requests_total",
                          {"code": "200"})
    request = _hist(snap, "repro_request_seconds")
    queue_wait = _hist(snap, "repro_queue_wait_seconds")
    batch = _hist(snap, "repro_batch_size")

    hits = _sum_values(snap, "repro_kernel_dispatch_total",
                       {"outcome": "hit"})
    fallbacks = _sum_values(snap, "repro_kernel_dispatch_total",
                            {"outcome": "fallback"})
    dispatches = hits + fallbacks

    caches: Dict[str, Dict[str, float]] = {}
    for sample in _samples(snap, "repro_cache_lookups_total"):
        labels = sample.get("labels", {})
        registry = labels.get("registry", "?")
        bucket = caches.setdefault(registry, {"hit": 0.0, "miss": 0.0})
        outcome = labels.get("outcome")
        if outcome in bucket:
            bucket[outcome] += float(sample.get("value", 0.0))
    cache_rates = {
        registry: {
            "hits": c["hit"],
            "misses": c["miss"],
            "rate": (c["hit"] / (c["hit"] + c["miss"])
                     if c["hit"] + c["miss"] else None),
        }
        for registry, c in sorted(caches.items())
    }

    engines = {}
    for sample in _samples(snap, "repro_sim_runs_total"):
        engine = sample.get("labels", {}).get("engine", "?")
        engines[engine] = engines.get(engine, 0.0) + float(
            sample.get("value", 0.0))

    return {
        "uptime_s": uptime_s,
        "requests": {
            "total": http_total,
            "ok": http_ok,
            "per_s": (http_total / uptime_s
                      if uptime_s and uptime_s > 0 else None),
            "p50_s": request["p50"],
            "p99_s": request["p99"],
            "mean_s": request["mean"],
            "count": request["count"],
        },
        "queue": {
            "depth": _gauge(snap, "repro_queue_depth"),
            "wait_p50_s": queue_wait["p50"],
            "wait_p99_s": queue_wait["p99"],
            "batches": batch["count"],
            "batched_requests": batch["sum"],
            "mean_batch": batch["mean"],
        },
        "pool": {
            "workers": _gauge(snap, "repro_pool_workers"),
            "in_flight": _gauge(snap, "repro_pool_in_flight"),
            "submitted": _sum_values(snap,
                                     "repro_pool_tasks_submitted_total"),
            "completed": _sum_values(snap,
                                     "repro_pool_tasks_completed_total"),
        },
        "kernels": {
            "hits": hits,
            "fallbacks": fallbacks,
            "hit_rate": hits / dispatches if dispatches else None,
        },
        "caches": cache_rates,
        "shards": {
            "runs": _sum_values(snap, "repro_shard_runs_total"),
            "halo_bytes": _sum_values(snap,
                                      "repro_shard_halo_bytes_total"),
            "skew": _gauge(snap, "repro_shard_skew_ratio"),
        },
        "sim": {
            "runs_by_engine": engines,
            "rounds": _sum_values(snap, "repro_sim_rounds_total"),
            "messages": _sum_values(snap, "repro_sim_messages_total"),
        },
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value: Any, unit: str = "", scale: float = 1.0,
         digits: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    scaled = float(value) * scale
    if unit == "%":
        return f"{scaled * 100.0:.{digits}f}%"
    if abs(scaled - round(scaled)) < 1e-9 and abs(scaled) < 1e15:
        return f"{int(round(scaled)):,}{unit}"
    return f"{scaled:,.{digits}f}{unit}"


def render_top(summary: Mapping[str, Any],
               source: str = "",
               rate_per_s: Optional[float] = None) -> str:
    """One text frame of the dashboard.

    ``rate_per_s`` overrides the whole-life request rate with a
    windowed one (watch mode computes it between repaints).
    """
    req = summary["requests"]
    queue = summary["queue"]
    pool = summary["pool"]
    kernels = summary["kernels"]
    shards = summary["shards"]
    sim = summary["sim"]
    per_s = rate_per_s if rate_per_s is not None else req["per_s"]

    lines = ["repro top" + (f" -- {source}" if source else "")]
    if summary.get("uptime_s") is not None:
        lines[0] += f"  (up {summary['uptime_s']:.0f}s)"
    lines.append(
        f"requests  total={_fmt(req['total'])}  ok={_fmt(req['ok'])}  "
        f"rate={_fmt(per_s, '/s')}  "
        f"p50={_fmt(req['p50_s'], 'ms', 1000.0)}  "
        f"p99={_fmt(req['p99_s'], 'ms', 1000.0)}"
    )
    lines.append(
        f"queue     depth={_fmt(queue['depth'])}  "
        f"wait p50={_fmt(queue['wait_p50_s'], 'ms', 1000.0)}  "
        f"p99={_fmt(queue['wait_p99_s'], 'ms', 1000.0)}  "
        f"batches={_fmt(queue['batches'])}  "
        f"mean batch={_fmt(queue['mean_batch'], '', 1.0, 2)}"
    )
    lines.append(
        f"pool      workers={_fmt(pool['workers'])}  "
        f"in-flight={_fmt(pool['in_flight'])}  "
        f"submitted={_fmt(pool['submitted'])}  "
        f"completed={_fmt(pool['completed'])}"
    )
    lines.append(
        f"kernels   hits={_fmt(kernels['hits'])}  "
        f"fallbacks={_fmt(kernels['fallbacks'])}  "
        f"hit-rate={_fmt(kernels['hit_rate'], '%')}"
    )
    if summary["caches"]:
        parts = [
            f"{name}={_fmt(stats['rate'], '%')} "
            f"({_fmt(stats['hits'])}/{_fmt(stats['hits'] + stats['misses'])})"
            for name, stats in summary["caches"].items()
        ]
        lines.append("caches    " + "  ".join(parts))
    else:
        lines.append("caches    -")
    lines.append(
        f"shards    runs={_fmt(shards['runs'])}  "
        f"halo={_fmt(shards['halo_bytes'], 'KiB', 1.0 / 1024.0)}  "
        f"skew={_fmt(shards['skew'], '', 1.0, 2)}"
    )
    engines = ", ".join(
        f"{name} x{int(count)}"
        for name, count in sorted(sim["runs_by_engine"].items())
    ) or "-"
    lines.append(
        f"sim       runs: {engines}  rounds={_fmt(sim['rounds'])}  "
        f"messages={_fmt(sim['messages'])}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
def snapshot_from_url(url: str, timeout: float = 10.0
                      ) -> Tuple[Dict[str, Any], Optional[float]]:
    """Scrape a live daemon's ``/stats``; returns (snapshot, uptime_s).

    ``url`` may be ``host:port`` or a full ``http://host:port`` base;
    the ``/stats`` path is appended when missing.
    """
    from urllib.request import urlopen

    if "//" not in url:
        url = "http://" + url
    if not url.rstrip("/").endswith("/stats"):
        url = url.rstrip("/") + "/stats"
    with urlopen(url, timeout=timeout) as response:  # noqa: S310 - http
        payload = json.loads(response.read().decode("utf-8"))
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(
            f"{url} returned no metrics section (old server?)"
        )
    return metrics, payload.get("uptime_s")


def snapshot_from_jsonl(path: str
                        ) -> Tuple[Dict[str, Any], Optional[float]]:
    """Read the latest flushed snapshot from a ``--metrics`` JSONL file."""
    records = read_metrics_jsonl(path)
    if not records:
        raise ValueError(f"no metrics records in {path}")
    last = records[-1]
    metrics = last.get("metrics", {})
    return metrics, None


# ----------------------------------------------------------------------
# Watch loop
# ----------------------------------------------------------------------
def watch(fetch, interval_s: float = 2.0, iterations: Optional[int] = None,
          out=None, clear: bool = True) -> int:
    """Repaint ``render_top`` frames until interrupted.

    ``fetch`` returns ``(snapshot, uptime_s, source_label)``; the loop
    computes a windowed request rate from successive frames.
    ``iterations`` bounds the loop for tests; ``None`` runs until
    Ctrl-C.  Returns an exit status.
    """
    import sys

    stream = out if out is not None else sys.stdout
    previous: Optional[Tuple[float, float]] = None  # (monotonic, total)
    frame = 0
    while iterations is None or frame < iterations:
        try:
            snap, uptime_s, label = fetch()
        except (OSError, ValueError) as error:
            print(f"repro top: {error}", file=stream)
            return 1
        summary = summarize_metrics(snap, uptime_s)
        now = time.monotonic()
        total = summary["requests"]["total"]
        rate = None
        if previous is not None and now > previous[0]:
            rate = max(0.0, (total - previous[1]) / (now - previous[0]))
        previous = (now, total)
        text = render_top(summary, source=label, rate_per_s=rate)
        if clear and frame:
            # Home the cursor and clear below: repaint without scroll.
            print("\x1b[H\x1b[J", end="", file=stream)
        print(text, file=stream, flush=True)
        frame += 1
        if iterations is not None and frame >= iterations:
            break
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            break
    return 0
