"""Vectorized round kernels: array-at-a-time execution of node programs.

The fast engine still pays one Python ``on_round`` call per node per
round.  On the paper's core workloads that dispatch is the dominant
remaining cost, and it is pure overhead: the populations are *perfectly
homogeneous* -- every node runs the same Linial-style color-reduction
step on data-only state.  A :class:`RoundKernel` exploits that by
executing one whole round for the entire population as a handful of
array/list "column" updates over the CSR rows of a
:class:`~repro.sim.compiled.CompiledNetwork`, the way a training stack
batches identical per-example programs into one kernel launch.

The contract mirrors the scheduler's engine contract: a kernel must be
*observationally identical* to running its program class through the
reference engine -- same outputs, same rounds/messages/bits/broadcast
totals (bit-identical ledgers), same exceptions in the same node order,
with and without a CONGEST bandwidth model.  The equivalence suite
(``tests/sim/test_engine_equivalence.py``) enforces this three-ways
(reference vs fast vs vectorized).

Lifecycle, driven by ``Scheduler._run_vectorized``:

1. the scheduler detects a *uniform* program population (every program
   is exactly the same class) with a registered kernel; anything else
   falls back to the fast engine;
2. ``kernel.prepare(compiled, programs, bandwidth)`` builds the column
   state (or returns ``None`` to decline -- e.g. heterogeneous
   parameters -- which also falls back);
3. ``kernel.step(round_number, columns, inboxes)`` executes one whole
   synchronous round and returns a :class:`KernelRound` with the
   round's ledger charges; ``inboxes`` is whatever the previous step
   returned as ``outboxes`` (a kernel-private representation of the
   in-flight messages -- most kernels keep the "messages" implicit in
   their columns and leave it ``None``);
4. ``kernel.finalize(columns, programs)`` writes the terminal state
   back into the program objects so ``Scheduler.outputs()`` and
   protocol wrappers see exactly what a per-node run would have left.

Kernels are registered per *exact* program class (subclasses may
override ``on_round`` arbitrarily, so they never inherit a kernel):
the substrate that defines a program registers its kernel next to it
(see ``repro.substrates.algebraic`` and ``repro.substrates.greedy``),
and benchmarks register kernels for their synthetic stress programs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from .compiled import CompiledNetwork
from .congest import BandwidthModel

#: A kernel factory: called once per run to get a fresh kernel instance.
KernelFactory = Callable[[], "RoundKernel"]


class KernelRound:
    """What one vectorized round produced, in ledger terms.

    ``messages``/``bits``/``max_message_bits``/``broadcasts`` are exactly
    the amounts the reference engine would charge for the round.
    ``active`` is the number of non-halted nodes *after* the round, and
    ``outboxes`` is handed back to the kernel as the next step's
    ``inboxes`` -- the scheduler never looks inside it.  The run ends
    after a round with ``active == 0`` and ``messages == 0`` (nothing
    left to schedule and nothing in flight), matching the reference
    engine's quiescence rule.
    """

    __slots__ = ("outboxes", "messages", "bits", "max_message_bits",
                 "broadcasts", "active")

    def __init__(self, active: int, messages: int = 0, bits: int = 0,
                 max_message_bits: int = 0, broadcasts: int = 0,
                 outboxes: Any = None):
        self.active = active
        self.messages = messages
        self.bits = bits
        self.max_message_bits = max_message_bits
        self.broadcasts = broadcasts
        self.outboxes = outboxes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KernelRound(active={self.active}, "
                f"messages={self.messages}, bits={self.bits})")


class RoundKernel(ABC):
    """Array-at-a-time executor for one homogeneous program class.

    A kernel instance lives for one scheduler run.  Implementations own
    the representation of their column state entirely; the scheduler
    only threads the opaque ``columns`` (from :meth:`prepare`) and
    ``outboxes`` (from each :meth:`step`) values back in.

    ``backend`` names the column representation the kernel settled on
    during :meth:`prepare` -- ``"python"`` (the default: plain
    list/tuple columns) or ``"numpy"`` when the kernel engaged the
    optional ndarray backend (:mod:`repro.sim.arrays`).  The scheduler
    reads it after ``prepare`` for the dispatch statistics and trace
    spans; the choice never changes results, only the representation.
    """

    #: Column representation chosen by ``prepare`` (diagnostics only).
    backend: str = "python"

    @abstractmethod
    def prepare(self, compiled: CompiledNetwork,
                programs: Sequence[Any],
                bandwidth: BandwidthModel) -> Optional[Any]:
        """Build column state for ``programs`` (one per dense id, in
        ``compiled.order``), or return ``None`` to decline the run.

        Declining is always safe: the scheduler falls back to the fast
        engine, which handles any population.  Kernels must decline
        whatever they do not model exactly -- heterogeneous parameters,
        programs with pre-existing state, and so on.
        """

    @abstractmethod
    def step(self, round_number: int, columns: Any,
             inboxes: Any) -> KernelRound:
        """Execute synchronous round ``round_number`` for all nodes.

        ``inboxes`` is the previous step's ``outboxes`` (``None`` on
        round 1).  Must raise exactly the exceptions the per-node run
        would raise, in the same node order; a raising step leaves the
        round uncharged, like a raising ``on_round``.
        """

    @abstractmethod
    def finalize(self, columns: Any, programs: Sequence[Any]) -> None:
        """Write terminal column state back into the program objects.

        At minimum everything ``NodeProgram.output()`` reads must be
        restored; kernels document any internal state they do not
        reconstruct.
        """


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_registry: Dict[type, KernelFactory] = {}


def register_kernel(program_class: type, factory: KernelFactory,
                    replace: bool = False) -> None:
    """Map ``program_class`` (exactly; subclasses excluded) to a kernel.

    ``factory`` is called once per scheduler run and must return a fresh
    :class:`RoundKernel` (a kernel class itself is the usual factory).
    Registering a class twice raises ``ValueError`` unless ``replace``
    is set -- a silent overwrite could change which semantics a running
    benchmark measures.
    """
    if not isinstance(program_class, type):
        raise TypeError(
            f"program_class must be a class, got {program_class!r}"
        )
    if not replace and program_class in _registry:
        raise ValueError(
            f"a kernel is already registered for {program_class.__name__}; "
            f"pass replace=True to override it"
        )
    _registry[program_class] = factory


def unregister_kernel(program_class: type) -> bool:
    """Remove the kernel for ``program_class``; True if one was registered."""
    return _registry.pop(program_class, None) is not None


def kernel_for(program_class: type) -> Optional[KernelFactory]:
    """The registered factory for exactly ``program_class``, or ``None``."""
    return _registry.get(program_class)


def registered_kernels() -> Tuple[type, ...]:
    """The program classes that currently have kernels (diagnostics)."""
    return tuple(_registry)


# ----------------------------------------------------------------------
# Process-level kernel statistics
#
# The vectorized engine falls back to the fast engine *silently* -- by
# design (the results are identical), but silently is exactly how a
# benchmark ends up measuring the wrong code path.  The scheduler
# records every eligibility decision here so sweep reports and the CLI
# can surface whether runs actually went through a kernel, which kernel,
# how long ``prepare`` (the warmup) took, and why any run fell back.
# ----------------------------------------------------------------------
class KernelStats:
    """Cumulative counters for vectorized-engine dispatch decisions.

    ``runs = hits + fallbacks``; ``warmup_s`` accumulates the wall-clock
    spent in ``prepare`` (including declined prepares, which also pay
    it); ``by_kernel`` maps kernel class names to hit counts,
    ``by_reason`` maps fallback reasons (``observer`` / ``stop_when`` /
    ``empty`` / ``mixed`` / ``unregistered`` / ``declined``) to counts,
    and ``by_backend`` maps ``"KernelName[backend]"`` to hit counts so
    operators can see which column representation
    (:mod:`repro.sim.arrays`) each kernel actually ran on.
    """

    __slots__ = ("runs", "hits", "fallbacks", "warmup_s", "by_kernel",
                 "by_reason", "by_backend")

    def __init__(self):
        self.runs = 0
        self.hits = 0
        self.fallbacks = 0
        self.warmup_s = 0.0
        self.by_kernel: Dict[str, int] = {}
        self.by_reason: Dict[str, int] = {}
        self.by_backend: Dict[str, int] = {}

    def as_dict(self) -> Dict[str, Any]:
        """A picklable snapshot (ships across process-pool boundaries)."""
        return {
            "runs": self.runs,
            "hits": self.hits,
            "fallbacks": self.fallbacks,
            "warmup_s": self.warmup_s,
            "by_kernel": dict(self.by_kernel),
            "by_reason": dict(self.by_reason),
            "by_backend": dict(self.by_backend),
        }


_stats = KernelStats()


def kernel_stats() -> Dict[str, Any]:
    """A snapshot of this process's cumulative kernel statistics."""
    return _stats.as_dict()


def reset_kernel_stats() -> None:
    """Zero the counters (benchmark harnesses, tests)."""
    global _stats
    _stats = KernelStats()


def _record_hit(kernel_name: str, warmup_s: float,
                backend: str = "python") -> None:
    _stats.runs += 1
    _stats.hits += 1
    _stats.warmup_s += warmup_s
    _stats.by_kernel[kernel_name] = _stats.by_kernel.get(kernel_name, 0) + 1
    key = f"{kernel_name}[{backend}]"
    _stats.by_backend[key] = _stats.by_backend.get(key, 0) + 1
    # Dual-write into the process metrics registry.  KernelStats stays
    # the authoritative dict view; the registry is the unified surface
    # the daemon exposes and the parent merges worker deltas into.
    obs_metrics.counter(
        "repro_kernel_dispatch_total",
        "Vectorized-engine dispatch decisions", ("outcome",),
    ).labels(outcome="hit").inc()
    obs_metrics.counter(
        "repro_kernel_hits_total",
        "Kernel executions by kernel class and backend",
        ("kernel", "backend"),
    ).labels(kernel=kernel_name, backend=backend).inc()
    if warmup_s:
        obs_metrics.counter(
            "repro_kernel_warmup_seconds_total",
            "Wall-clock spent in kernel prepare()",
        ).inc(warmup_s)


def _record_fallback(reason: str, warmup_s: float = 0.0) -> None:
    _stats.runs += 1
    _stats.fallbacks += 1
    _stats.warmup_s += warmup_s
    _stats.by_reason[reason] = _stats.by_reason.get(reason, 0) + 1
    obs_metrics.counter(
        "repro_kernel_dispatch_total",
        "Vectorized-engine dispatch decisions", ("outcome",),
    ).labels(outcome="fallback").inc()
    obs_metrics.counter(
        "repro_kernel_fallbacks_total",
        "Kernel fallbacks by reason", ("reason",),
    ).labels(reason=reason).inc()
    if warmup_s:
        obs_metrics.counter(
            "repro_kernel_warmup_seconds_total",
            "Wall-clock spent in kernel prepare()",
        ).inc(warmup_s)


# ----------------------------------------------------------------------
# Shared helpers for kernel implementations
# ----------------------------------------------------------------------
def fanout_totals(compiled: CompiledNetwork) -> Tuple[int, int]:
    """``(total_copies, envelopes)`` of one all-node broadcast round.

    ``total_copies`` is the sum of degrees; ``envelopes`` counts the
    nodes that actually queue one (``ctx.broadcast`` with no neighbors
    queues nothing, so zero-degree nodes send -- and count -- nothing).
    """
    degrees = compiled.degrees
    total = 0
    envelopes = 0
    for d in degrees:
        if d:
            total += d
            envelopes += 1
    return total, envelopes
