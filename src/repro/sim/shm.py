"""Shared-memory CSR topologies for process-pool sweeps.

``parallel_sweep`` ships work to pool workers by value: the substrate
cache snapshot and every task's parameters are pickled into each worker.
For scalar memos that is cheap; for a million-node topology it is the
dominant cost and the RSS multiplier -- every worker unpickles and holds
its own full copy of ``indptr``/``indices``/``degrees``.

This module keeps exactly one physical copy.  The parent *publishes* a
:class:`~repro.sim.compiled.CompiledNetwork` under a key: its CSR arrays
are copied once into a ``multiprocessing.shared_memory`` segment laid
out as ``[indptr | indices | degrees]`` (native int64 throughout).  Only
the tiny handle (segment name plus shape) travels through the pool
initializer.  Workers *attach* lazily: the first lookup maps the
segment and wraps zero-copy ``memoryview('q')`` slices in a
``CompiledNetwork.from_csr`` -- no bytes are duplicated, and the kernel
code path is unchanged because the compiled network's buffers only need
the buffer protocol.

Keys are the same tuples the streaming generators intern under (e.g.
``("ring-stream", n)``), so :mod:`repro.graphs.streaming` transparently
resolves a published topology before rebuilding it -- a worker whose
measure function calls ``stream_ring(n)`` gets the mapped segment.

Publishing is best-effort: platforms without usable shared memory (or
sandboxes denying ``shm_open``) make :func:`publish` return ``None`` and
sweeps fall back to per-worker rebuilds, trading memory for correctness.

Python 3.8-3.12 ``SharedMemory`` has no ``track=False`` knob, and the
child's resource tracker would otherwise unlink the parent's segment at
worker exit; :func:`_attach` therefore de-registers the mapping from the
worker-side tracker.  The parent owns the lifecycle: segments are
refcounted (:func:`publish` increments, :func:`release` decrements and
unlinks at zero), and whatever is still published is force-unlinked at
interpreter exit.  Long-lived daemons additionally call
:func:`install_signal_cleanup` so a SIGTERM-killed process never leaves
orphan ``/dev/shm`` segments behind -- ``atexit`` alone does not run on
a fatal signal.  A *worker* dying (even ``SIGKILL``) can never leak a
segment: workers only ever map, they never own.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Any, Dict, Hashable, Optional, Tuple

from .compiled import CompiledNetwork

_ITEMSIZE = 8  # native int64, matching array('q') / np.int64

#: Guards the parent-side registries.  A serve supervisor restarting a
#: crashed pool releases topologies from its monitor thread while the
#: request path may be publishing the same key; without the lock the
#: read-decrement-pop sequence in :func:`release` can run twice for one
#: reference and either double-unlink or leak the segment until exit.
_lock = threading.RLock()

#: Parent side: key -> (SharedMemory, handle, original compiled network).
_exported: Dict[Hashable, Tuple[Any, dict, CompiledNetwork]] = {}

#: Parent side: key -> number of outstanding :func:`publish` calls.
_refcounts: Dict[Hashable, int] = {}

#: Signals a cleanup handler has been installed for (idempotence).
_signal_cleanup_installed: Dict[int, Any] = {}

#: Worker side: key -> handle received through the pool initializer.
_handles: Dict[Hashable, dict] = {}

#: Worker side: key -> (SharedMemory, attached compiled network).
_attached: Dict[Hashable, Tuple[Any, CompiledNetwork]] = {}

_cleanup_registered = False


def _as_bytes(buffer) -> bytes:
    """Raw little-endian int64 bytes of an array/memoryview/ndarray."""
    return bytes(memoryview(buffer))


def publish(key: Hashable, compiled: CompiledNetwork) -> Optional[dict]:
    """Copy ``compiled``'s CSR arrays into shared memory under ``key``.

    Returns the picklable handle to ship to workers, or ``None`` when
    shared memory is unusable here (the sweep then degrades to
    per-worker topology rebuilds).  Publishing the same key twice is
    idempotent and returns the existing handle, with the segment's
    refcount incremented: each successful ``publish`` must eventually be
    matched by a :func:`release` (or rely on the exit/signal cleanup --
    sweeps that never release simply keep their segments warm for the
    life of the process).
    """
    global _cleanup_registered
    with _lock:
        existing = _exported.get(key)
        if existing is not None:
            _refcounts[key] = _refcounts.get(key, 0) + 1
            return existing[1]
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - stdlib module
        return None
    n = compiled.n
    nnz = len(compiled.indices)
    size = _ITEMSIZE * ((n + 1) + nnz + n)
    try:
        segment = shared_memory.SharedMemory(create=True, size=max(size, 1))
    except (OSError, PermissionError, ValueError):
        return None
    offset = 0
    for chunk in (compiled.indptr, compiled.indices, compiled.degrees):
        raw = _as_bytes(chunk)
        segment.buf[offset:offset + len(raw)] = raw
        offset += len(raw)
    handle = {"name": segment.name, "n": n, "nnz": nnz}
    with _lock:
        racer = _exported.get(key)
        if racer is not None:
            # Another thread published the same key while we copied;
            # keep theirs, drop ours, count ourselves as a reference.
            _refcounts[key] = _refcounts.get(key, 0) + 1
            handle = racer[1]
            discard = segment
        else:
            _exported[key] = (segment, handle, compiled)
            _refcounts[key] = 1
            discard = None
        if not _cleanup_registered:
            atexit.register(unlink_all)
            _cleanup_registered = True
    if discard is not None:
        try:
            discard.close()
            discard.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass
    return handle


def release(key: Hashable) -> bool:
    """Drop one :func:`publish` reference; unlink the segment at zero.

    Returns True when this call actually unlinked the segment.  Releasing
    an unknown (or already-unlinked) key is a no-op: the exit cleanup may
    legitimately race an explicit release during daemon shutdown.
    """
    with _lock:
        entry = _exported.get(key)
        if entry is None:
            return False
        remaining = _refcounts.get(key, 1) - 1
        if remaining > 0:
            _refcounts[key] = remaining
            return False
        # Pop before touching the segment: a concurrent release (or the
        # exit backstop) then sees an unknown key and no-ops, so the
        # close/unlink pair below runs exactly once per segment.
        _exported.pop(key, None)
        _refcounts.pop(key, None)
    segment = entry[0]
    try:
        segment.close()
        segment.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - best effort
        pass
    return True


def refcount(key: Hashable) -> int:
    """Outstanding publish references for ``key`` (0 when unpublished)."""
    return _refcounts.get(key, 0) if key in _exported else 0


def export_handles() -> Dict[Hashable, dict]:
    """Handles for every published topology (pool-initializer payload)."""
    return {key: entry[1] for key, entry in _exported.items()}


def receive_handles(handles: Optional[Dict[Hashable, dict]]) -> None:
    """Worker side: remember the parent's handles for lazy attachment."""
    if handles:
        _handles.update(handles)


def _attach_untracked(shared_memory, name: str):
    """Map an existing segment without registering it with the resource
    tracker.

    Only the segment's *owner* may track it: a worker's registration is
    worse than useless either way.  Under ``spawn`` the worker's own
    tracker would unlink the parent's live segment when the worker
    exits; under ``fork`` the tracker process is *shared*, its cache is
    a set, so the worker's register is a no-op and the matching
    ``unregister`` (the historical workaround here) silently deletes
    the parent's entry -- the parent's eventual ``unlink`` then crashes
    the tracker thread with a KeyError traceback on stderr.  Supplying
    ``track=False`` needs Python >= 3.13, so instead the register call
    is stubbed out for the duration of the constructor.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach(handle: dict):
    """Map a published segment and wrap it as a zero-copy topology."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - stdlib module
        return None
    try:
        segment = _attach_untracked(shared_memory, handle["name"])
    except (OSError, PermissionError, FileNotFoundError):
        return None
    n = handle["n"]
    nnz = handle["nnz"]
    view = memoryview(segment.buf)
    bound_indptr = _ITEMSIZE * (n + 1)
    bound_indices = bound_indptr + _ITEMSIZE * nnz
    bound_degrees = bound_indices + _ITEMSIZE * n
    indptr = view[0:bound_indptr].cast("q")
    indices = view[bound_indptr:bound_indices].cast("q")
    degrees = view[bound_indices:bound_degrees].cast("q")
    compiled = CompiledNetwork.from_csr(indptr, indices)
    compiled._degrees = degrees
    return segment, compiled


def lookup(key: Hashable) -> Optional[CompiledNetwork]:
    """The topology published under ``key``, if reachable from here.

    In the parent this is the original compiled network; in a pool
    worker it attaches the shared segment on first use and returns the
    mapped view afterwards.  ``None`` means "not published" -- callers
    build the topology themselves.
    """
    exported = _exported.get(key)
    if exported is not None:
        return exported[2]
    cached = _attached.get(key)
    if cached is not None:
        return cached[1]
    handle = _handles.get(key)
    if handle is None:
        return None
    mapping = _attach(handle)
    if mapping is None:
        return None
    # Keep the SharedMemory object alive alongside its memoryviews.
    _attached[key] = mapping
    return mapping[1]


def segment_bytes(key: Hashable) -> Optional[int]:
    """Size in bytes of the published segment for ``key`` (parent side)."""
    entry = _exported.get(key)
    return entry[0].size if entry is not None else None


def published_keys() -> Tuple[Hashable, ...]:
    """Keys currently published by this process."""
    return tuple(_exported)


def unlink_all() -> None:
    """Parent side: close and unlink every published segment.

    Force-drops all refcounts -- this is the exit/signal backstop, not
    the polite path (:func:`release` is).
    """
    with _lock:
        _refcounts.clear()
        doomed = list(_exported.values())
        _exported.clear()
    for segment, _handle, _compiled in doomed:
        try:
            segment.close()
            segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass


def install_signal_cleanup(signums: Optional[Tuple[int, ...]] = None) -> Tuple[int, ...]:
    """Unlink published segments when a fatal signal arrives.

    ``atexit`` does not run when the process dies to SIGTERM, so a
    killed daemon would leak its ``/dev/shm`` segments until reboot.
    This installs a handler (default: SIGTERM, plus SIGHUP where it
    exists) that unlinks everything, restores the previous disposition,
    and re-raises the signal so the process still dies with the normal
    signal exit status.  Idempotent; returns the signals actually
    hooked.  Only the segment *owner* (the daemon / sweep parent) should
    call this -- workers have nothing to unlink.
    """
    try:
        import signal
    except ImportError:  # pragma: no cover - stdlib module
        return ()
    if signums is None:
        signums = (signal.SIGTERM,) + (
            (signal.SIGHUP,) if hasattr(signal, "SIGHUP") else ()
        )

    def _cleanup_and_reraise(signum, frame):
        unlink_all()
        previous = _signal_cleanup_installed.get(signum, signal.SIG_DFL)
        if callable(previous):
            previous(signum, frame)
            return
        signal.signal(signum, previous if previous is not None
                      else signal.SIG_DFL)
        os.kill(os.getpid(), signum)

    hooked = []
    for signum in signums:
        if signum in _signal_cleanup_installed:
            hooked.append(signum)
            continue
        try:
            previous = signal.signal(signum, _cleanup_and_reraise)
        except (OSError, ValueError):  # pragma: no cover - non-main thread
            continue
        _signal_cleanup_installed[signum] = previous
        hooked.append(signum)
    return tuple(hooked)


def _reset_worker_state() -> None:
    """Forget worker-side handles/attachments (tests only)."""
    _handles.clear()
    _attached.clear()
