"""Process-parallel benchmark trials with deterministic seeding.

Benchmark sweeps run many *independent* trials (one per parameter point
or seed); nothing about the round simulator itself parallelizes, but the
trials do, embarrassingly.  This module fans a measurement function over
a process pool while keeping three guarantees the benchmark suite relies
on:

* **determinism** -- results are returned in submission order, and
  :func:`derive_seed` gives every trial a seed that depends only on the
  base seed and the trial's index, never on scheduling;
* **picklability is the caller's only obligation** -- the measurement
  must be a module-level function with picklable parameters (all the
  ``benchmarks/bench_*.py`` measures already are);
* **graceful fallback** -- on a single-core box, with ``max_workers=1``,
  with ``REPRO_PARALLEL=0``, or when the platform cannot spawn a pool
  (some sandboxes lack POSIX semaphores), trials run serially in-process
  with identical results.

Workers additionally start with the parent's warm substrate caches
(:mod:`repro.substrates.cache` -- schedules, prime tables, polynomial
families), shipped once through the pool initializer; disable with
``REPRO_SIM_CACHE=0``.

:func:`parallel_sweep` is a drop-in for
:func:`repro.analysis.experiments.sweep`.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

Record = Dict[str, Any]
Measure = Callable[..., Record]

#: Environment switch: ``REPRO_PARALLEL=0`` forces the serial fallback,
#: ``REPRO_PARALLEL=<k>`` caps the worker count.
_ENV_WORKERS = "REPRO_PARALLEL"


def derive_seed(base_seed: int, trial_index: int) -> int:
    """A deterministic, well-mixed per-trial seed.

    Hash-based (BLAKE2) rather than arithmetic so that nearby trial
    indices do not produce correlated generator states, and stable across
    platforms and Python versions (unlike ``hash``).
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{trial_index}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF


def resolve_workers(max_workers: Optional[int] = None) -> int:
    """The worker count to use: explicit arg, else env cap, else cores."""
    if max_workers is not None:
        return max(1, max_workers)
    env = os.environ.get(_ENV_WORKERS)
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _call_measure(task):
    """Top-level worker target (must be importable for pickling)."""
    measure, params, timing, collect, trace = task
    start = time.perf_counter()
    if trace:
        # The parent has a tracer installed: collect this trial's span/
        # event records in a private tracer and piggy-back them on the
        # record (picklable plain dicts); the parent merges them into
        # its own tracer with worker attribution.  The serial fallback
        # never sets this flag -- there the parent's tracer is already
        # the ambient one.
        from ..obs.tracer import Tracer, use_tracer

        with use_tracer(Tracer()) as tracer:
            record = measure(**params)
        trial_events = tracer.events
    else:
        record = measure(**params)
        trial_events = None
    elapsed = time.perf_counter() - start
    tagged: Record = dict(params)
    tagged.update(record)
    if timing:
        tagged["wall_s"] = elapsed
    if trial_events is not None:
        tagged["__trace__"] = {"pid": os.getpid(), "events": trial_events}
    if collect:
        # Piggy-back this worker's cumulative kernel counters on the
        # record; the parent pops them off and keeps, per pid, the
        # snapshot with the most runs (counters are monotonic, so that
        # is the worker's final state regardless of completion order).
        from ..obs.manifest import peak_rss_kb
        from .kernels import kernel_stats
        from .scheduler import default_engine

        tagged["__worker__"] = dict(
            kernel_stats(), pid=os.getpid(), engine=default_engine(),
            rss_kb=peak_rss_kb(),
        )
    return tagged


def _substrate_snapshot():
    """The parent's warm substrate caches, or ``None`` when empty/off.

    Imported lazily: the simulator layer does not depend on the substrate
    layer, it only ferries its (opaque, picklable) cache state across the
    process boundary.
    """
    try:
        from ..substrates import cache as substrate_cache
    except ImportError:  # pragma: no cover - substrates always ship
        return None
    if not substrate_cache.cache_enabled():
        return None
    return substrate_cache.snapshot() or None


def _init_worker(state, engine=None, arrays_enabled=None,
                 topologies=None):
    """Pool initializer: seed a worker with the parent's caches,
    scheduler engine, kernel array-backend decision, and shared-memory
    topology handles.

    The engine is resolved *once in the parent* (explicit argument, else
    the parent's ``default_engine()`` -- which reads ``use_engine`` /
    ``set_default_engine`` overrides and the parent's current
    ``REPRO_SIM_ENGINE``) and shipped explicitly: a forked worker's
    environment is frozen at spawn time, so without this an engine
    selected after the pool exists would be silently ignored.  The
    NumPy-backend decision (:func:`repro.sim.arrays.arrays_enabled`) is
    frozen the same way so one sweep never splits across backends.
    Kernel counters are zeroed so per-worker stats describe this sweep
    only (``fork`` otherwise inherits the parent's cumulative counters).

    ``topologies`` carries :mod:`repro.sim.shm` handles for topologies
    the parent published to shared memory -- a name and a shape per key,
    a few dozen bytes -- so every worker maps the parent's single CSR
    copy instead of unpickling (and holding) its own.
    """
    if topologies:
        from . import shm

        shm.receive_handles(topologies)
    if engine is not None:
        from .scheduler import set_default_engine

        set_default_engine(engine)
    if arrays_enabled is not None:
        from .arrays import set_arrays_override

        set_arrays_override(arrays_enabled)
    from .kernels import reset_kernel_stats

    reset_kernel_stats()
    if state is None:
        return
    try:
        from ..substrates import cache as substrate_cache
    except ImportError:  # pragma: no cover - substrates always ship
        return
    substrate_cache.restore(state)


class SweepReport(list):
    """The records of a sweep plus per-worker engine/kernel telemetry.

    A ``list`` subclass so ``parallel_sweep(..., report=True)`` stays a
    drop-in for the plain record list; ``workers`` holds one dict per
    pool worker (or one for the in-process serial run) with ``pid``,
    ``engine``, and that worker's :func:`~repro.sim.kernels.kernel_stats`
    counters -- the visibility knob for the vectorized engine's *silent*
    fallback-to-fast: a sweep that meant to measure kernels but shows
    ``hits == 0`` is measuring the wrong code path.

    ``trace_events`` holds the merged per-trial trace records when the
    sweep ran under an installed :class:`~repro.obs.tracer.Tracer`
    (every record stamped with its ``worker`` pid, ids rebased into the
    parent tracer's sequence), empty otherwise -- the raw material for
    the ``repro trace`` worker-skew table.
    """

    def __init__(self, records: Iterable[Record], engine: str,
                 workers: List[Dict[str, Any]], wall_s: float,
                 trace_events: Optional[List[Dict[str, Any]]] = None):
        super().__init__(records)
        self.engine = engine
        self.workers = workers
        self.wall_s = wall_s
        self.trace_events = trace_events if trace_events is not None else []

    @property
    def records(self) -> List[Record]:
        return list(self)

    def describe(self) -> str:
        """A human-readable multi-line summary (benchmark stdout)."""
        lines = [
            f"sweep: {len(self)} trials, engine={self.engine}, "
            f"{len(self.workers)} worker(s), wall {self.wall_s:.2f}s"
        ]
        for worker in self.workers:
            kernels = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(worker["by_kernel"].items())
            ) or "none"
            reasons = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(worker["by_reason"].items())
            ) or "none"
            rss_kb = worker.get("rss_kb")
            rss = (f", peak rss {rss_kb / 1024:.1f} MiB"
                   if rss_kb is not None else "")
            lines.append(
                f"  worker pid={worker['pid']} engine={worker['engine']}: "
                f"{worker['hits']}/{worker['runs']} kernel hits "
                f"[{kernels}], fallbacks [{reasons}], "
                f"warmup {worker['warmup_s'] * 1e3:.2f} ms{rss}"
            )
        if self.trace_events:
            lines.append(
                f"  traced: {len(self.trace_events)} records merged "
                f"from workers"
            )
        return "\n".join(lines)


def _pop_worker_traces(records: List[Record], tracer) -> List[Dict[str, Any]]:
    """Strip the piggy-backed ``__trace__`` payloads off the records and
    merge them into the parent's tracer, stamped with their worker pid.

    Records come back in submission order (``pool.map``), so the merged
    stream is deterministic for a fixed trial list; only the ``worker``
    attribution and wall-clock differ run to run, and both are physical
    fields outside the logical trace view.
    """
    merged: List[Dict[str, Any]] = []
    for record in records:
        payload = record.pop("__trace__", None)
        if payload is None:
            continue
        merged.extend(
            tracer.merge(payload["events"], worker=payload["pid"])
        )
    return merged


def _pop_worker_stats(records: List[Record]) -> List[Dict[str, Any]]:
    """Strip the piggy-backed ``__worker__`` snapshots off the records
    and reduce them to one final snapshot per worker pid."""
    by_pid: Dict[int, Dict[str, Any]] = {}
    for record in records:
        snap = record.pop("__worker__", None)
        if snap is None:
            continue
        prev = by_pid.get(snap["pid"])
        if prev is None or snap["runs"] >= prev["runs"]:
            by_pid[snap["pid"]] = snap
    return [by_pid[pid] for pid in sorted(by_pid)]


def _stats_delta(before: Dict[str, Any], after: Dict[str, Any],
                 engine: str) -> Dict[str, Any]:
    """Kernel-counter delta for the serial path (the in-process counters
    are cumulative and may predate the sweep)."""

    def sub(field: str) -> Dict[str, int]:
        return {
            name: count - before[field].get(name, 0)
            for name, count in after[field].items()
            if count - before[field].get(name, 0)
        }

    from ..obs.manifest import peak_rss_kb

    return {
        "pid": os.getpid(),
        "engine": engine,
        "runs": after["runs"] - before["runs"],
        "hits": after["hits"] - before["hits"],
        "fallbacks": after["fallbacks"] - before["fallbacks"],
        "warmup_s": after["warmup_s"] - before["warmup_s"],
        "by_kernel": sub("by_kernel"),
        "by_reason": sub("by_reason"),
        "rss_kb": peak_rss_kb(),
    }


def parallel_sweep(measure: Measure,
                   params_list: Iterable[Mapping[str, Any]],
                   max_workers: Optional[int] = None,
                   timing: bool = False,
                   engine: Optional[str] = None,
                   report: bool = False,
                   topologies: Optional[Mapping[Any, Any]] = None
                   ) -> List[Record]:
    """Run ``measure(**params)`` for every parameter dict, across processes.

    A drop-in replacement for :func:`repro.analysis.experiments.sweep`:
    each record is the parameter dict updated with the measured record
    (plus ``wall_s`` when ``timing``), in the order of ``params_list``.

    ``engine`` pins the scheduler engine for every trial (validated in
    the parent, applied in each worker -- and via ``use_engine`` on the
    serial path); ``None`` means the parent's current default, resolved
    once at call time.  With ``report=True`` the returned list is a
    :class:`SweepReport` carrying per-worker kernel hit/fallback/warmup
    stats.

    When a :class:`~repro.obs.tracer.Tracer` is installed in the parent
    (:func:`repro.obs.use_tracer`), each pool worker traces its trials
    into a private tracer and ships the records back with the results;
    the parent merges them -- stamped ``worker=<pid>`` -- into its own
    tracer under a ``parallel-sweep`` span (and onto
    ``SweepReport.trace_events``), so a traced sweep profiles exactly
    like a traced serial run, with worker attribution on top.

    ``topologies`` maps streaming-generator keys (e.g.
    ``("ring-stream", n)``) to
    :class:`~repro.sim.compiled.CompiledNetwork` instances the parent
    wants workers to *map*, not copy: each is published once to
    :mod:`repro.sim.shm` and only the handles travel through the pool
    initializer, so worker RSS stays flat in the topology size.
    Publishing is best-effort -- where shared memory is unusable,
    workers simply rebuild.
    """
    from ..obs.tracer import current_tracer
    from .scheduler import _validate_engine, default_engine, use_engine

    resolved = (_validate_engine(engine) if engine is not None
                else default_engine())
    topology_handles = None
    if topologies:
        from . import shm

        topology_handles = {
            key: handle
            for key, handle in (
                (key, shm.publish(key, compiled))
                for key, compiled in topologies.items()
            )
            if handle is not None
        } or None
    tracer = current_tracer()
    start = time.perf_counter()
    tasks = [
        (measure, dict(params), timing, report, tracer is not None)
        for params in params_list
    ]
    workers = min(resolve_workers(max_workers), max(1, len(tasks)))
    records: Optional[List[Record]] = None
    worker_stats: List[Dict[str, Any]] = []
    trace_events: List[Dict[str, Any]] = []
    if workers > 1 and len(tasks) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            # Warm substrate caches (schedules, polynomial families,
            # prime tables, interned networks with their compiled CSR
            # topologies) computed in this process are shipped to every
            # worker once, instead of each worker re-deriving them per
            # trial; the resolved engine choice rides along.
            from .arrays import arrays_enabled

            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(_substrate_snapshot(), resolved,
                          arrays_enabled(), topology_handles),
            ) as pool:
                records = list(pool.map(_call_measure, tasks))
            if tracer is not None:
                with tracer.span("algorithm", "parallel-sweep",
                                 trials=len(tasks), engine=resolved):
                    trace_events = _pop_worker_traces(records, tracer)
            worker_stats = _pop_worker_stats(records)
        except (ImportError, OSError, PermissionError):
            # No usable process pool on this platform; results are
            # identical either way, only wall-clock differs.
            records = None
    if records is None:
        from .kernels import kernel_stats

        # The serial fallback runs in-process, where the parent's tracer
        # is already ambient: trials trace straight into it, no merge.
        serial_tasks = [(m, p, t, False, False) for (m, p, t, _, _) in tasks]
        before = kernel_stats() if report else None
        with use_engine(resolved):
            records = [_call_measure(task) for task in serial_tasks]
        if report:
            worker_stats = [_stats_delta(before, kernel_stats(), resolved)]
    if not report:
        return records
    return SweepReport(
        records, resolved, worker_stats, time.perf_counter() - start,
        trace_events,
    )


def run_trials(measure: Callable[..., Any],
               trials: int,
               base_seed: int = 0,
               max_workers: Optional[int] = None,
               engine: Optional[str] = None,
               **common: Any) -> List[Any]:
    """Run ``trials`` seeded repetitions of ``measure`` across processes.

    Trial ``i`` is called as ``measure(seed=derive_seed(base_seed, i),
    **common)``; results come back in trial order.  Use this for
    repeated-trial benchmarks where :func:`parallel_sweep`'s grid shape
    does not fit.  ``engine`` is resolved in the parent exactly as in
    :func:`parallel_sweep`.
    """
    params_list = [
        dict(common, seed=derive_seed(base_seed, i)) for i in range(trials)
    ]
    records = parallel_sweep(
        _strip_record(measure), params_list, max_workers=max_workers,
        engine=engine,
    )
    return [record["result"] for record in records]


class _strip_record:
    """Adapt an arbitrary-return measure to the record protocol.

    A class (not a closure) so it pickles by reference to the wrapped
    module-level function.
    """

    def __init__(self, measure: Callable[..., Any]):
        self.measure = measure

    def __call__(self, **params: Any) -> Record:
        return {"result": self.measure(**params)}
