"""Process-parallel benchmark trials with deterministic seeding.

Benchmark sweeps run many *independent* trials (one per parameter point
or seed); nothing about the round simulator itself parallelizes, but the
trials do, embarrassingly.  This module fans a measurement function over
a process pool while keeping three guarantees the benchmark suite relies
on:

* **determinism** -- results are returned in submission order, and
  :func:`derive_seed` gives every trial a seed that depends only on the
  base seed and the trial's index, never on scheduling;
* **picklability is the caller's only obligation** -- the measurement
  must be a module-level function with picklable parameters (all the
  ``benchmarks/bench_*.py`` measures already are);
* **graceful fallback** -- on a single-core box, with ``max_workers=1``,
  with ``REPRO_PARALLEL=0``, or when the platform cannot spawn a pool
  (some sandboxes lack POSIX semaphores), trials run serially in-process
  with identical results.

Workers additionally start with the parent's warm substrate caches
(:mod:`repro.substrates.cache` -- schedules, prime tables, polynomial
families), shipped once through the pool initializer; disable with
``REPRO_SIM_CACHE=0``.

:func:`parallel_sweep` is a drop-in for
:func:`repro.analysis.experiments.sweep`.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
)

from ..obs import metrics as obs_metrics

Record = Dict[str, Any]
Measure = Callable[..., Record]

#: Environment switch: ``REPRO_PARALLEL=0`` forces the serial fallback,
#: ``REPRO_PARALLEL=<k>`` caps the worker count.
_ENV_WORKERS = "REPRO_PARALLEL"


def derive_seed(base_seed: int, trial_index: int) -> int:
    """A deterministic, well-mixed per-trial seed.

    Hash-based (BLAKE2) rather than arithmetic so that nearby trial
    indices do not produce correlated generator states, and stable across
    platforms and Python versions (unlike ``hash``).
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{trial_index}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF


def resolve_workers(max_workers: Optional[int] = None) -> int:
    """The worker count to use: explicit arg, else env cap, else cores."""
    if max_workers is not None:
        return max(1, max_workers)
    env = os.environ.get(_ENV_WORKERS)
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _call_measure(task):
    """Top-level worker target (must be importable for pickling)."""
    measure, params, timing, collect, trace = task
    metrics_before = obs_metrics.snapshot()
    start = time.perf_counter()
    if trace:
        # The parent has a tracer installed: collect this trial's span/
        # event records in a private tracer and piggy-back them on the
        # record (picklable plain dicts); the parent merges them into
        # its own tracer with worker attribution.  The serial fallback
        # never sets this flag -- there the parent's tracer is already
        # the ambient one.
        from ..obs.tracer import Tracer, use_tracer

        with use_tracer(Tracer()) as tracer:
            record = measure(**params)
        trial_events = tracer.events
    else:
        record = measure(**params)
        trial_events = None
    elapsed = time.perf_counter() - start
    tagged: Record = dict(params)
    tagged.update(record)
    if timing:
        tagged["wall_s"] = elapsed
    if trial_events is not None:
        tagged["__trace__"] = {"pid": os.getpid(), "events": trial_events}
    if collect:
        # Piggy-back this worker's cumulative kernel counters on the
        # record; the parent pops them off and keeps, per pid, the
        # snapshot with the most runs (counters are monotonic, so that
        # is the worker's final state regardless of completion order).
        from ..obs.manifest import peak_rss_kb
        from .kernels import kernel_stats
        from .scheduler import default_engine

        tagged["__worker__"] = dict(
            kernel_stats(), pid=os.getpid(), engine=default_engine(),
            rss_kb=peak_rss_kb(),
        )
    # Piggy-back this trial's registry *delta* (not the cumulative
    # snapshot: deltas stay additive when a pool is reused across
    # sweeps, and a forked worker's inherited parent state never
    # double-counts).  The parent pops the payload off every record and
    # merges only foreign pids -- on the serial path and in thread-mode
    # pools the updates already landed in the parent registry directly.
    delta = obs_metrics.snapshot_delta(metrics_before,
                                       obs_metrics.snapshot())
    if delta:
        tagged["__metrics__"] = {"pid": os.getpid(), "metrics": delta}
    return tagged


def _substrate_snapshot():
    """The parent's warm substrate caches, or ``None`` when empty/off.

    Imported lazily: the simulator layer does not depend on the substrate
    layer, it only ferries its (opaque, picklable) cache state across the
    process boundary.
    """
    try:
        from ..substrates import cache as substrate_cache
    except ImportError:  # pragma: no cover - substrates always ship
        return None
    if not substrate_cache.cache_enabled():
        return None
    return substrate_cache.snapshot() or None


def _init_worker(state, engine=None, arrays_enabled=None,
                 topologies=None, shards=None):
    """Pool initializer: seed a worker with the parent's caches,
    scheduler engine, kernel array-backend decision, and shared-memory
    topology handles.

    The engine is resolved *once in the parent* (explicit argument, else
    the parent's ``default_engine()`` -- which reads ``use_engine`` /
    ``set_default_engine`` overrides and the parent's current
    ``REPRO_SIM_ENGINE``) and shipped explicitly: a forked worker's
    environment is frozen at spawn time, so without this an engine
    selected after the pool exists would be silently ignored.  The
    NumPy-backend decision (:func:`repro.sim.arrays.arrays_enabled`) is
    frozen the same way so one sweep never splits across backends.
    Kernel counters are zeroed so per-worker stats describe this sweep
    only (``fork`` otherwise inherits the parent's cumulative counters).

    ``topologies`` carries :mod:`repro.sim.shm` handles for topologies
    the parent published to shared memory -- a name and a shape per key,
    a few dozen bytes -- so every worker maps the parent's single CSR
    copy instead of unpickling (and holding) its own.
    """
    if topologies:
        from . import shm

        shm.receive_handles(topologies)
    # A pool worker never spawns nested shard pools; the sharded engine
    # executes its shards serially in-process when this flag is set.
    from . import sharded as _sharded

    _sharded._mark_worker()
    if shards is not None:
        _sharded.set_default_shards(shards)
    if engine is not None:
        from .scheduler import set_default_engine

        set_default_engine(engine)
    if arrays_enabled is not None:
        from .arrays import set_arrays_override

        set_arrays_override(arrays_enabled)
    from .kernels import reset_kernel_stats

    reset_kernel_stats()
    # Same reasoning for the unified registry: a forked worker inherits
    # the parent's cumulative metrics, which must not ride back on this
    # worker's deltas or exposition.
    obs_metrics.reset_metrics()
    if state is None:
        return
    try:
        from ..substrates import cache as substrate_cache
    except ImportError:  # pragma: no cover - substrates always ship
        return
    substrate_cache.restore(state)


def _probe(task):
    """Trivial worker warmup target (must be importable for pickling)."""
    return task


class PoolUnavailable(RuntimeError):
    """Raised when a worker pool cannot be created or used on this
    platform (no POSIX semaphores, denied ``fork``, missing module).
    Callers choose the degradation: :func:`parallel_sweep` retries
    serially, the serve supervisor drops to a thread pool."""


class _EngineCall:
    """Wrap a call so thread-mode pools apply the pool's engine.

    Process workers get their engine through the pool initializer; a
    thread shares the parent's process state, so the resolved engine is
    applied around each call instead.  A class (not a closure) to stay
    picklable by accident of use, and cheap to construct per submit.
    """

    __slots__ = ("engine", "fn", "shards")

    def __init__(self, engine: str, fn: Callable[..., Any],
                 shards: Optional[int] = None):
        self.engine = engine
        self.fn = fn
        self.shards = shards

    def __call__(self, *args: Any) -> Any:
        from .scheduler import use_engine
        from .sharded import use_shards

        with use_engine(self.engine):
            if self.shards is not None:
                with use_shards(self.shards):
                    return self.fn(*args)
            return self.fn(*args)


class WorkerPool:
    """A worker pool whose lifetime *outlives a single sweep*.

    Historically :func:`parallel_sweep` owned the whole process
    lifecycle: it created a pool, shipped the warm caches, ran one sweep,
    and tore everything down -- so every sweep (and every would-be
    server request) repaid worker spawn, cache transfer, and topology
    publication.  ``WorkerPool`` splits "process lifecycle" from "one
    run": it owns the executor, the engine/array-backend decision (frozen
    at construction), the substrate-cache snapshot shipped to workers,
    and the shared-memory topologies it published (refcounted via
    :func:`repro.sim.shm.publish` and released on :meth:`close`).  One
    pool can serve many :func:`parallel_sweep` calls (pass ``pool=``) or
    a long-running daemon's request stream (:mod:`repro.serve`).

    Two modes: ``"process"`` (a ``ProcessPoolExecutor`` with the warm
    initializer) and ``"thread"`` (a single-thread executor sharing the
    parent's caches -- the degradation target where process pools are
    unusable, and the deterministic choice for tests).  :meth:`warm`
    spawns the workers eagerly and degrades ``process -> thread``
    automatically, recording ``fallback_reason``.

    Occupancy counters (``submitted`` / ``completed`` / ``in_flight``)
    are maintained on every dispatch for the daemon's ``/stats``.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 engine: Optional[str] = None,
                 topologies: Optional[Mapping[Hashable, Any]] = None,
                 mode: str = "process",
                 shards: Optional[int] = None):
        from .scheduler import _validate_engine, default_engine
        from .sharded import default_shards

        if mode not in ("process", "thread"):
            raise ValueError(f"unknown pool mode: {mode!r}")
        self.engine = (_validate_engine(engine) if engine is not None
                       else default_engine())
        # Resolved once in the parent, like the engine: a worker running
        # engine="sharded" executes its shards serially in-process, so
        # the count only shapes partitioning, never nested pools.
        self.shards = int(shards) if shards is not None else default_shards()
        if self.shards < 1:
            raise ValueError("shards must be positive")
        self.workers = resolve_workers(max_workers)
        self.mode = mode
        self.fallback_reason: Optional[str] = None
        self.warmup_s: Optional[float] = None
        self.submitted = 0
        self.completed = 0
        self._lock = threading.Lock()
        self._executor = None
        self._closed = False
        self._topology_keys: List[Hashable] = []
        if topologies:
            self.add_topologies(topologies)

    # -- lifecycle ------------------------------------------------------
    def _make_executor(self):
        if self.mode == "process":
            from concurrent.futures import ProcessPoolExecutor

            from . import shm
            from .arrays import arrays_enabled

            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(_substrate_snapshot(), self.engine,
                          arrays_enabled(), shm.export_handles() or None,
                          self.shards),
            )
        from concurrent.futures import ThreadPoolExecutor

        # One thread: the work is CPU-bound pure Python (no GIL win from
        # more), and a single lane keeps engine overrides and kernel
        # counters serialized.
        return ThreadPoolExecutor(max_workers=1)

    @property
    def executor(self):
        """The live executor, created lazily on first dispatch."""
        if self._closed:
            raise PoolUnavailable("pool is closed")
        if self._executor is None:
            try:
                self._executor = self._make_executor()
            except (ImportError, OSError, PermissionError) as error:
                raise PoolUnavailable(
                    f"cannot create {self.mode} pool: {error}"
                ) from error
        return self._executor

    def warm(self) -> float:
        """Spawn the workers now and measure the cold-start cost.

        A long-lived daemon pays worker spawn, cache shipping, and
        import cost *once, at boot* instead of on the first unlucky
        request.  Where a process pool turns out unusable, the pool
        degrades to thread mode (``fallback_reason`` records why) rather
        than failing -- serving must start.  Returns the warmup wall
        seconds (also kept as ``warmup_s``).
        """
        start = time.perf_counter()
        try:
            assert self.map(_probe, list(range(self.workers))) == \
                list(range(self.workers))
        except PoolUnavailable as error:
            if self.mode != "process":
                raise
            if self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None
            self.mode = "thread"
            self.fallback_reason = str(error)
            assert self.map(_probe, [0]) == [0]
        self.warmup_s = time.perf_counter() - start
        return self.warmup_s

    def close(self) -> None:
        """Shut the executor down and release published topologies."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        from . import shm

        for key in self._topology_keys:
            shm.release(key)
        self._topology_keys.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- topologies -----------------------------------------------------
    def add_topologies(self, topologies: Mapping[Hashable, Any]
                       ) -> Dict[Hashable, dict]:
        """Publish compiled topologies to shared memory under this
        pool's ownership (released at :meth:`close`).

        Returns the handle map.  Workers spawned *before* a publication
        receive the handles with each task rather than through the
        initializer, so late additions still resolve.
        """
        from . import shm

        handles: Dict[Hashable, dict] = {}
        for key, compiled in topologies.items():
            handle = shm.publish(key, compiled)
            if handle is not None:
                self._topology_keys.append(key)
                handles[key] = handle
        return handles

    def topology_handles(self) -> Optional[Dict[Hashable, dict]]:
        """Every handle published by this process (task payload form)."""
        from . import shm

        return shm.export_handles() or None

    # -- dispatch -------------------------------------------------------
    @property
    def in_flight(self) -> int:
        with self._lock:
            return self.submitted - self.completed

    def _count_submit(self, n: int = 1) -> None:
        with self._lock:
            self.submitted += n
            in_flight = self.submitted - self.completed
        obs_metrics.counter(
            "repro_pool_tasks_submitted_total",
            "Tasks dispatched to the worker pool",
        ).inc(n)
        obs_metrics.gauge(
            "repro_pool_in_flight",
            "Tasks submitted to the pool and not yet completed",
        ).set(in_flight)

    def _count_complete(self, n: int) -> None:
        with self._lock:
            self.completed += n
            in_flight = self.submitted - self.completed
        obs_metrics.counter(
            "repro_pool_tasks_completed_total",
            "Tasks the worker pool finished",
        ).inc(n)
        obs_metrics.gauge(
            "repro_pool_in_flight",
            "Tasks submitted to the pool and not yet completed",
        ).set(in_flight)

    def _count_done(self, _future: Any = None) -> None:
        self._count_complete(1)

    def submit(self, fn: Callable[..., Any], *args: Any):
        """Dispatch one call; returns a ``concurrent.futures.Future``."""
        executor = self.executor
        call = (fn if self.mode == "process"
                else _EngineCall(self.engine, fn, self.shards))
        try:
            future = executor.submit(call, *args)
        except (OSError, PermissionError, RuntimeError) as error:
            raise PoolUnavailable(str(error)) from error
        self._count_submit()
        future.add_done_callback(self._count_done)
        return future

    def map(self, fn: Callable[[Any], Any], tasks: List[Any]) -> List[Any]:
        """Ordered results of ``fn`` over ``tasks`` (one sweep's runs)."""
        executor = self.executor
        call = (fn if self.mode == "process"
                else _EngineCall(self.engine, fn, self.shards))
        self._count_submit(len(tasks))
        try:
            return list(executor.map(call, tasks))
        except (ImportError, OSError, PermissionError) as error:
            raise PoolUnavailable(str(error)) from error
        finally:
            self._count_complete(len(tasks))

    def stats(self) -> Dict[str, Any]:
        """Occupancy/provenance snapshot for ``/stats`` and manifests."""
        with self._lock:
            submitted, completed = self.submitted, self.completed
        return {
            "mode": self.mode,
            "workers": self.workers if self.mode == "process" else 1,
            "engine": self.engine,
            "shards": self.shards,
            "submitted": submitted,
            "completed": completed,
            "in_flight": submitted - completed,
            "warmup_s": self.warmup_s,
            "fallback_reason": self.fallback_reason,
            "topologies": len(self._topology_keys),
        }


class SweepReport(list):
    """The records of a sweep plus per-worker engine/kernel telemetry.

    A ``list`` subclass so ``parallel_sweep(..., report=True)`` stays a
    drop-in for the plain record list; ``workers`` holds one dict per
    pool worker (or one for the in-process serial run) with ``pid``,
    ``engine``, and that worker's :func:`~repro.sim.kernels.kernel_stats`
    counters -- the visibility knob for the vectorized engine's *silent*
    fallback-to-fast: a sweep that meant to measure kernels but shows
    ``hits == 0`` is measuring the wrong code path.

    ``trace_events`` holds the merged per-trial trace records when the
    sweep ran under an installed :class:`~repro.obs.tracer.Tracer`
    (every record stamped with its ``worker`` pid, ids rebased into the
    parent tracer's sequence), empty otherwise -- the raw material for
    the ``repro trace`` worker-skew table.
    """

    def __init__(self, records: Iterable[Record], engine: str,
                 workers: List[Dict[str, Any]], wall_s: float,
                 trace_events: Optional[List[Dict[str, Any]]] = None):
        super().__init__(records)
        self.engine = engine
        self.workers = workers
        self.wall_s = wall_s
        self.trace_events = trace_events if trace_events is not None else []

    @property
    def records(self) -> List[Record]:
        return list(self)

    def describe(self) -> str:
        """A human-readable multi-line summary (benchmark stdout)."""
        lines = [
            f"sweep: {len(self)} trials, engine={self.engine}, "
            f"{len(self.workers)} worker(s), wall {self.wall_s:.2f}s"
        ]
        for worker in self.workers:
            kernels = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(worker["by_kernel"].items())
            ) or "none"
            reasons = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(worker["by_reason"].items())
            ) or "none"
            rss_kb = worker.get("rss_kb")
            rss = (f", peak rss {rss_kb / 1024:.1f} MiB"
                   if rss_kb is not None else "")
            lines.append(
                f"  worker pid={worker['pid']} engine={worker['engine']}: "
                f"{worker['hits']}/{worker['runs']} kernel hits "
                f"[{kernels}], fallbacks [{reasons}], "
                f"warmup {worker['warmup_s'] * 1e3:.2f} ms{rss}"
            )
        if self.trace_events:
            lines.append(
                f"  traced: {len(self.trace_events)} records merged "
                f"from workers"
            )
        return "\n".join(lines)


def _pop_worker_traces(records: List[Record], tracer) -> List[Dict[str, Any]]:
    """Strip the piggy-backed ``__trace__`` payloads off the records and
    merge them into the parent's tracer, stamped with their worker pid.

    Records come back in submission order (``pool.map``), so the merged
    stream is deterministic for a fixed trial list; only the ``worker``
    attribution and wall-clock differ run to run, and both are physical
    fields outside the logical trace view.
    """
    merged: List[Dict[str, Any]] = []
    for record in records:
        payload = record.pop("__trace__", None)
        if payload is None:
            continue
        merged.extend(
            tracer.merge(payload["events"], worker=payload["pid"])
        )
    return merged


def _pop_worker_metrics(records: List[Record]) -> int:
    """Strip the piggy-backed ``__metrics__`` deltas off the records and
    merge the foreign-pid ones into this process's registry.

    Same-pid payloads (thread-mode pools, the serial fallback) are
    dropped unmerged: their updates already landed in this registry
    directly, and merging the delta again would double-count.  Returns
    the number of deltas merged (diagnostics/tests).
    """
    own_pid = os.getpid()
    merged = 0
    for record in records:
        payload = record.pop("__metrics__", None)
        if payload is None or payload["pid"] == own_pid:
            continue
        try:
            obs_metrics.merge(payload["metrics"])
        except obs_metrics.MetricError:
            # A worker on a different code revision (or with clashing
            # bucket layouts) must not poison the sweep's results.
            continue
        merged += 1
    return merged


def _pop_worker_stats(records: List[Record]) -> List[Dict[str, Any]]:
    """Strip the piggy-backed ``__worker__`` snapshots off the records
    and reduce them to one final snapshot per worker pid."""
    by_pid: Dict[int, Dict[str, Any]] = {}
    for record in records:
        snap = record.pop("__worker__", None)
        if snap is None:
            continue
        prev = by_pid.get(snap["pid"])
        if prev is None or snap["runs"] >= prev["runs"]:
            by_pid[snap["pid"]] = snap
    return [by_pid[pid] for pid in sorted(by_pid)]


def _stats_delta(before: Dict[str, Any], after: Dict[str, Any],
                 engine: str) -> Dict[str, Any]:
    """Kernel-counter delta for the serial path (the in-process counters
    are cumulative and may predate the sweep)."""

    def sub(field: str) -> Dict[str, int]:
        return {
            name: count - before[field].get(name, 0)
            for name, count in after[field].items()
            if count - before[field].get(name, 0)
        }

    from ..obs.manifest import peak_rss_kb

    return {
        "pid": os.getpid(),
        "engine": engine,
        "runs": after["runs"] - before["runs"],
        "hits": after["hits"] - before["hits"],
        "fallbacks": after["fallbacks"] - before["fallbacks"],
        "warmup_s": after["warmup_s"] - before["warmup_s"],
        "by_kernel": sub("by_kernel"),
        "by_reason": sub("by_reason"),
        "rss_kb": peak_rss_kb(),
    }


def parallel_sweep(measure: Measure,
                   params_list: Iterable[Mapping[str, Any]],
                   max_workers: Optional[int] = None,
                   timing: bool = False,
                   engine: Optional[str] = None,
                   report: bool = False,
                   topologies: Optional[Mapping[Any, Any]] = None,
                   pool: Optional[WorkerPool] = None,
                   shards: Optional[int] = None
                   ) -> List[Record]:
    """Run ``measure(**params)`` for every parameter dict, across processes.

    A drop-in replacement for :func:`repro.analysis.experiments.sweep`:
    each record is the parameter dict updated with the measured record
    (plus ``wall_s`` when ``timing``), in the order of ``params_list``.

    ``engine`` pins the scheduler engine for every trial (validated in
    the parent, applied in each worker -- and via ``use_engine`` on the
    serial path); ``None`` means the parent's current default, resolved
    once at call time.  With ``report=True`` the returned list is a
    :class:`SweepReport` carrying per-worker kernel hit/fallback/warmup
    stats.

    When a :class:`~repro.obs.tracer.Tracer` is installed in the parent
    (:func:`repro.obs.use_tracer`), each pool worker traces its trials
    into a private tracer and ships the records back with the results;
    the parent merges them -- stamped ``worker=<pid>`` -- into its own
    tracer under a ``parallel-sweep`` span (and onto
    ``SweepReport.trace_events``), so a traced sweep profiles exactly
    like a traced serial run, with worker attribution on top.

    ``topologies`` maps streaming-generator keys (e.g.
    ``("ring-stream", n)``) to
    :class:`~repro.sim.compiled.CompiledNetwork` instances the parent
    wants workers to *map*, not copy: each is published once to
    :mod:`repro.sim.shm` and only the handles travel through the pool
    initializer, so worker RSS stays flat in the topology size.
    Publishing is best-effort -- where shared memory is unusable,
    workers simply rebuild.

    ``shards`` pins the sharded engine's shard count for every trial,
    resolved in the parent exactly like ``engine`` (``None`` means the
    parent's current :func:`repro.sim.sharded.default_shards`).  Inside
    pool workers the sharded engine always executes its shards serially
    in-process, so the count shapes partitioning, never nested pools.

    ``pool`` reuses a live :class:`WorkerPool` instead of paying pool
    creation and cache shipping per sweep: the pool's frozen engine
    wins (passing a *different* explicit ``engine`` is an error), its
    workers stay warm across calls, and it is **not** closed here --
    the caller owns the process lifecycle.  Topologies passed alongside
    an external pool are published under the pool's refcount and
    released when the pool closes.
    """
    from ..obs.tracer import current_tracer
    from .scheduler import _validate_engine, default_engine, use_engine
    from .sharded import default_shards, use_shards

    if pool is not None:
        resolved = pool.engine
        if engine is not None and _validate_engine(engine) != resolved:
            raise ValueError(
                f"engine {engine!r} conflicts with the pool's frozen "
                f"engine {resolved!r}"
            )
        resolved_shards = pool.shards
        if shards is not None and int(shards) != resolved_shards:
            raise ValueError(
                f"shards {shards!r} conflicts with the pool's frozen "
                f"shard count {resolved_shards!r}"
            )
        if topologies:
            pool.add_topologies(topologies)
    else:
        resolved = (_validate_engine(engine) if engine is not None
                    else default_engine())
        resolved_shards = (int(shards) if shards is not None
                           else default_shards())
        if resolved_shards < 1:
            raise ValueError("shards must be positive")
        if topologies:
            # Sweep-owned publications deliberately skip the refcounted
            # release: they stay warm for follow-up sweeps and are
            # unlinked by the exit/signal cleanup, the pre-WorkerPool
            # contract every benchmark relies on.
            from . import shm

            for key, compiled in topologies.items():
                shm.publish(key, compiled)
    tracer = current_tracer()
    start = time.perf_counter()
    tasks = [
        (measure, dict(params), timing, report, tracer is not None)
        for params in params_list
    ]
    workers = min(resolve_workers(max_workers), max(1, len(tasks)))
    records: Optional[List[Record]] = None
    worker_stats: List[Dict[str, Any]] = []
    trace_events: List[Dict[str, Any]] = []
    own_pool: Optional[WorkerPool] = None
    dispatch = pool
    if dispatch is None and workers > 1 and len(tasks) > 1:
        # One sweep, one ephemeral pool: warm substrate caches
        # (schedules, polynomial families, prime tables, interned
        # networks with their compiled CSR topologies) computed in this
        # process are shipped to every worker once, instead of each
        # worker re-deriving them per trial; the resolved engine choice
        # rides along.
        dispatch = own_pool = WorkerPool(max_workers=workers,
                                         engine=resolved,
                                         shards=resolved_shards)
    try:
        if dispatch is not None:
            try:
                records = dispatch.map(_call_measure, tasks)
            except PoolUnavailable:
                # No usable pool on this platform; results are
                # identical either way, only wall-clock differs.
                records = None
            else:
                if tracer is not None:
                    with tracer.span("algorithm", "parallel-sweep",
                                     trials=len(tasks), engine=resolved):
                        trace_events = _pop_worker_traces(records, tracer)
                _pop_worker_metrics(records)
                worker_stats = _pop_worker_stats(records)
        if records is None:
            from .kernels import kernel_stats

            # The serial fallback runs in-process, where the parent's
            # tracer is already ambient: trials trace straight into it,
            # no merge.
            serial_tasks = [
                (m, p, t, False, False) for (m, p, t, _, _) in tasks
            ]
            before = kernel_stats() if report else None
            with use_engine(resolved), use_shards(resolved_shards):
                records = [_call_measure(task) for task in serial_tasks]
            _pop_worker_metrics(records)
            if report:
                worker_stats = [
                    _stats_delta(before, kernel_stats(), resolved)
                ]
    finally:
        if own_pool is not None:
            own_pool.close()
    if not report:
        return records
    return SweepReport(
        records, resolved, worker_stats, time.perf_counter() - start,
        trace_events,
    )


def run_trials(measure: Callable[..., Any],
               trials: int,
               base_seed: int = 0,
               max_workers: Optional[int] = None,
               engine: Optional[str] = None,
               **common: Any) -> List[Any]:
    """Run ``trials`` seeded repetitions of ``measure`` across processes.

    Trial ``i`` is called as ``measure(seed=derive_seed(base_seed, i),
    **common)``; results come back in trial order.  Use this for
    repeated-trial benchmarks where :func:`parallel_sweep`'s grid shape
    does not fit.  ``engine`` is resolved in the parent exactly as in
    :func:`parallel_sweep`.
    """
    params_list = [
        dict(common, seed=derive_seed(base_seed, i)) for i in range(trials)
    ]
    records = parallel_sweep(
        _strip_record(measure), params_list, max_workers=max_workers,
        engine=engine,
    )
    return [record["result"] for record in records]


class _strip_record:
    """Adapt an arbitrary-return measure to the record protocol.

    A class (not a closure) so it pickles by reference to the wrapped
    module-level function.
    """

    def __init__(self, measure: Callable[..., Any]):
        self.measure = measure

    def __call__(self, **params: Any) -> Record:
        return {"result": self.measure(**params)}
