"""Process-parallel benchmark trials with deterministic seeding.

Benchmark sweeps run many *independent* trials (one per parameter point
or seed); nothing about the round simulator itself parallelizes, but the
trials do, embarrassingly.  This module fans a measurement function over
a process pool while keeping three guarantees the benchmark suite relies
on:

* **determinism** -- results are returned in submission order, and
  :func:`derive_seed` gives every trial a seed that depends only on the
  base seed and the trial's index, never on scheduling;
* **picklability is the caller's only obligation** -- the measurement
  must be a module-level function with picklable parameters (all the
  ``benchmarks/bench_*.py`` measures already are);
* **graceful fallback** -- on a single-core box, with ``max_workers=1``,
  with ``REPRO_PARALLEL=0``, or when the platform cannot spawn a pool
  (some sandboxes lack POSIX semaphores), trials run serially in-process
  with identical results.

Workers additionally start with the parent's warm substrate caches
(:mod:`repro.substrates.cache` -- schedules, prime tables, polynomial
families), shipped once through the pool initializer; disable with
``REPRO_SIM_CACHE=0``.

:func:`parallel_sweep` is a drop-in for
:func:`repro.analysis.experiments.sweep`.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

Record = Dict[str, Any]
Measure = Callable[..., Record]

#: Environment switch: ``REPRO_PARALLEL=0`` forces the serial fallback,
#: ``REPRO_PARALLEL=<k>`` caps the worker count.
_ENV_WORKERS = "REPRO_PARALLEL"


def derive_seed(base_seed: int, trial_index: int) -> int:
    """A deterministic, well-mixed per-trial seed.

    Hash-based (BLAKE2) rather than arithmetic so that nearby trial
    indices do not produce correlated generator states, and stable across
    platforms and Python versions (unlike ``hash``).
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{trial_index}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF


def resolve_workers(max_workers: Optional[int] = None) -> int:
    """The worker count to use: explicit arg, else env cap, else cores."""
    if max_workers is not None:
        return max(1, max_workers)
    env = os.environ.get(_ENV_WORKERS)
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _call_measure(task):
    """Top-level worker target (must be importable for pickling)."""
    measure, params, timing = task
    start = time.perf_counter()
    record = measure(**params)
    elapsed = time.perf_counter() - start
    tagged: Record = dict(params)
    tagged.update(record)
    if timing:
        tagged["wall_s"] = elapsed
    return tagged


def _substrate_snapshot():
    """The parent's warm substrate caches, or ``None`` when empty/off.

    Imported lazily: the simulator layer does not depend on the substrate
    layer, it only ferries its (opaque, picklable) cache state across the
    process boundary.
    """
    try:
        from ..substrates import cache as substrate_cache
    except ImportError:  # pragma: no cover - substrates always ship
        return None
    if not substrate_cache.cache_enabled():
        return None
    return substrate_cache.snapshot() or None


def _init_worker(state, engine=None):
    """Pool initializer: seed a worker with the parent's caches and
    scheduler engine.

    Workers inherit ``REPRO_SIM_ENGINE`` through the environment, but a
    parent that selected an engine programmatically (``use_engine`` /
    ``set_default_engine`` -- e.g. the benchmark runner measuring the
    vectorized path) must ship that choice explicitly or every worker
    would silently measure the default.
    """
    if engine is not None:
        from .scheduler import set_default_engine

        set_default_engine(engine)
    if state is None:
        return
    try:
        from ..substrates import cache as substrate_cache
    except ImportError:  # pragma: no cover - substrates always ship
        return
    substrate_cache.restore(state)


def parallel_sweep(measure: Measure,
                   params_list: Iterable[Mapping[str, Any]],
                   max_workers: Optional[int] = None,
                   timing: bool = False) -> List[Record]:
    """Run ``measure(**params)`` for every parameter dict, across processes.

    A drop-in replacement for :func:`repro.analysis.experiments.sweep`:
    each record is the parameter dict updated with the measured record
    (plus ``wall_s`` when ``timing``), in the order of ``params_list``.
    """
    tasks = [(measure, dict(params), timing) for params in params_list]
    workers = min(resolve_workers(max_workers), max(1, len(tasks)))
    if workers <= 1 or len(tasks) <= 1:
        return [_call_measure(task) for task in tasks]
    try:
        from concurrent.futures import ProcessPoolExecutor

        from .scheduler import default_engine

        # Warm substrate caches (schedules, polynomial families, prime
        # tables) computed in this process are shipped to every worker
        # once, instead of each worker re-deriving them per trial; the
        # parent's engine selection rides along.
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(_substrate_snapshot(), default_engine()),
        ) as pool:
            return list(pool.map(_call_measure, tasks))
    except (ImportError, OSError, PermissionError):
        # No usable process pool on this platform; results are identical
        # either way, only wall-clock differs.
        return [_call_measure(task) for task in tasks]


def run_trials(measure: Callable[..., Any],
               trials: int,
               base_seed: int = 0,
               max_workers: Optional[int] = None,
               **common: Any) -> List[Any]:
    """Run ``trials`` seeded repetitions of ``measure`` across processes.

    Trial ``i`` is called as ``measure(seed=derive_seed(base_seed, i),
    **common)``; results come back in trial order.  Use this for
    repeated-trial benchmarks where :func:`parallel_sweep`'s grid shape
    does not fit.
    """
    params_list = [
        dict(common, seed=derive_seed(base_seed, i)) for i in range(trials)
    ]
    records = parallel_sweep(
        _strip_record(measure), params_list, max_workers=max_workers
    )
    return [record["result"] for record in records]


class _strip_record:
    """Adapt an arbitrary-return measure to the record protocol.

    A class (not a closure) so it pickles by reference to the wrapped
    module-level function.
    """

    def __init__(self, measure: Callable[..., Any]):
        self.measure = measure

    def __call__(self, **params: Any) -> Record:
        return {"result": self.measure(**params)}
