"""Sharded single-graph execution: one run, many workers, halo exchange.

Every other engine executes one graph on one core.  This module
partitions a compiled CSR topology into contiguous node shards
(:mod:`repro.graphs.partition`), publishes the topology once through
:mod:`repro.sim.shm`, and runs each shard's kernel columns in a
persistent pool of shard-pinned worker processes.  Workers synchronize
once per round by exchanging only *halo* state -- the new colors of
boundary nodes owned by other shards -- through a shared int64 state
segment with a double-buffered read/write epoch: round ``r`` writes its
boundary updates into the ``r % 2`` staging buffers and reads the
``(r - 1) % 2`` buffers, so every worker sees exactly the previous
round's view (the serial engines' stale-view semantics) with no locks
and no torn reads.

The observational contract is the same byte-identity the vectorized
engine honors: colors, ledgers, CONGEST exception order, and canonical
logical trace streams match serial execution exactly.  That works
because the supported populations are *bucketed reductions*: each
round's deciders are determined by their initial color, deciders read
only stale neighbor state, and shard ranges are contiguous in dense-id
order -- so per-shard results merged in shard index order reproduce the
serial engine's global ascending-node order, and the first failure in
the lowest failing shard is the globally first failure.

Engagement is transparent, like the vectorized engine's fallback chain:
populations the sharded registry does not cover (or shard count <= 1)
fall through to ``Scheduler._run_vectorized`` and its own fallback
chain.  Eligible populations always execute shard-wise; they use the
process pool only when the topology is CSR-direct, the graph is large
enough (:data:`MIN_SHARD_NODES`), shared memory works here, and we are
not already inside a pool worker -- otherwise the shards run serially
in-process over the same code path, byte-identically.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..graphs.partition import Partition, partition_by_edges
from ..obs import metrics as obs_metrics
from . import arrays, shm
from .congest import LocalModel
from .errors import AlgorithmFailure, RoundLimitExceeded
from .message import intern_broadcast

__all__ = [
    "MIN_SHARD_NODES",
    "SHARDS_ENV",
    "ShardSpec",
    "default_shards",
    "register_sharded",
    "reset_shard_stats",
    "set_default_shards",
    "shard_stats",
    "sharded_for",
    "use_shards",
]

#: Environment variable naming the process-default shard count.
SHARDS_ENV = "REPRO_SIM_SHARDS"

#: Below this node count, eligible runs keep the shard execution model
#: but skip the process pool: per-round task dispatch would dominate the
#: per-shard compute.  Module constant so tests can monkeypatch it.
MIN_SHARD_NODES = 65_536

_ITEMSIZE = 8  # native int64 cells throughout the state segment

#: Programmatic shard-count selection; ``None`` defers to the
#: environment (read dynamically, like the engine override).
_shards_override: Optional[int] = None

#: True inside a pool worker (set by the pool initializer): nested runs
#: execute their shards serially instead of spawning nested pools.
_in_worker = False


def default_shards() -> int:
    """The shard count used by ``engine="sharded"``.

    A programmatic selection wins; otherwise the current value of
    ``REPRO_SIM_SHARDS`` (re-read on every call), falling back to 1 --
    which makes the sharded engine a transparent alias for the
    vectorized one until somebody actually asks for shards.
    """
    if _shards_override is not None:
        return _shards_override
    try:
        return max(1, int(os.environ.get(SHARDS_ENV, "1")))
    except ValueError:
        return 1


def set_default_shards(shards: int) -> int:
    """Set the process-wide shard count; returns the previous value."""
    global _shards_override
    if shards < 1:
        raise ValueError("shards must be positive")
    previous = default_shards()
    _shards_override = int(shards)
    return previous


@contextmanager
def use_shards(shards: int) -> Iterator[None]:
    """Temporarily pin the shard count (mirrors ``use_engine``)."""
    global _shards_override
    saved = _shards_override
    set_default_shards(shards)
    try:
        yield
    finally:
        _shards_override = saved


def _mark_worker() -> None:
    """Called by the pool initializer: this process is a pool worker."""
    global _in_worker
    _in_worker = True


# ----------------------------------------------------------------------
# Registry: program class -> shard-spec builder
# ----------------------------------------------------------------------
class ShardSpec:
    """A shardable bucketed-reduction population, flattened to columns.

    ``colors`` is the initial per-node int column; round ``t >= 2``
    retires color ``q - t + 1`` (deciders recolor to the mex of their
    stale neighborhood, must land below ``target``), and the run
    terminates after ``q - target + 2`` rounds.  ``finalize(colors,
    programs)`` writes the final column back into the programs --
    parent-side only, never pickled.
    """

    __slots__ = ("colors", "q", "target", "bits", "tag", "finalize",
                 "name")

    def __init__(self, colors: List[int], q: int, target: int, bits: int,
                 tag: str, finalize: Callable[[List[int], list], None],
                 name: str):
        self.colors = colors
        self.q = q
        self.target = target
        self.bits = bits
        self.tag = tag
        self.finalize = finalize
        self.name = name

    @property
    def total_rounds(self) -> int:
        # 1 broadcast + (q - target) decider rounds + 1 terminal no-op.
        return self.q - self.target + 2


#: Exact program class -> builder(compiled, programs, bandwidth) ->
#: Optional[ShardSpec].  Separate from the vectorized kernel registry:
#: a kernelized program class is not automatically safe to shard.
_registry: Dict[type, Callable[..., Optional[ShardSpec]]] = {}


def register_sharded(program_class: type,
                     builder: Callable[..., Optional[ShardSpec]]) -> None:
    """Register a shard-spec builder for ``program_class``."""
    _registry[program_class] = builder


def sharded_for(program_class: type
                ) -> Optional[Callable[..., Optional[ShardSpec]]]:
    """The registered builder for exactly ``program_class``, if any."""
    return _registry.get(program_class)


# ----------------------------------------------------------------------
# Process-level statistics
# ----------------------------------------------------------------------
class ShardStats:
    """Cumulative sharded-engine counters (mirrors ``KernelStats``)."""

    def __init__(self):
        self.runs = 0
        self.engaged = 0
        self.fallbacks = 0
        self.by_reason: Dict[str, int] = {}
        self.by_shards: Dict[int, int] = {}
        self.by_mode: Dict[str, int] = {}
        self.halo_bytes = 0
        self.barrier_wait_s = 0.0
        self.last_run: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "engaged": self.engaged,
            "fallbacks": self.fallbacks,
            "by_reason": dict(self.by_reason),
            "by_shards": dict(self.by_shards),
            "by_mode": dict(self.by_mode),
            "halo_bytes": self.halo_bytes,
            "barrier_wait_s": self.barrier_wait_s,
            "last_run": (dict(self.last_run)
                         if self.last_run is not None else None),
        }


_stats = ShardStats()


def shard_stats() -> Dict[str, Any]:
    """A snapshot of this process's cumulative sharded-engine stats."""
    return _stats.as_dict()


def reset_shard_stats() -> None:
    """Zero the counters (benchmark harnesses, tests)."""
    global _stats
    _stats = ShardStats()


def _record_shard_fallback(reason: str) -> None:
    _stats.runs += 1
    _stats.fallbacks += 1
    _stats.by_reason[reason] = _stats.by_reason.get(reason, 0) + 1
    obs_metrics.counter(
        "repro_shard_fallbacks_total",
        "Sharded-engine fallbacks by reason", ("reason",),
    ).labels(reason=reason).inc()


# ----------------------------------------------------------------------
# State-segment layout (computed identically in parent and workers)
# ----------------------------------------------------------------------
def _layout(n: int, bounds: Tuple[int, ...]) -> Dict[str, Any]:
    """Cell offsets of the shared int64 state segment.

    ``[init colors | final colors | staging x2]`` where each staging
    epoch holds, per shard, ``[count | (node, color) * capacity]`` with
    capacity = shard size (boundary updates can never exceed it; the
    slack buys a layout independent of the cut structure, so workers
    need no global pre-scan).
    """
    shards = len(bounds) - 1
    stage_off = [0]
    for s in range(shards):
        stage_off.append(stage_off[-1] + 1 + 2 * (bounds[s + 1] - bounds[s]))
    epoch_cells = stage_off[-1]
    return {
        "init": 0,
        "final": n,
        "stage_base": 2 * n,
        "stage_off": stage_off,
        "epoch_cells": epoch_cells,
        "cells": 2 * n + 2 * epoch_cells,
    }


def _stage_cell(layout: Dict[str, Any], epoch: int, shard: int) -> int:
    return (layout["stage_base"] + epoch * layout["epoch_cells"]
            + layout["stage_off"][shard])


def _read_cells(buf, cell: int, count: int) -> list:
    """Copy ``count`` int64 cells out of a shared buffer (no exports
    left behind, so the segment can still be closed)."""
    view = memoryview(buf)[_ITEMSIZE * cell:_ITEMSIZE * (cell + count)]
    cast = view.cast("q")
    out = cast.tolist()
    cast.release()
    view.release()
    return out


def _write_bytes(buf, cell: int, raw: bytes) -> None:
    start = _ITEMSIZE * cell
    buf[start:start + len(raw)] = raw


def _int64_bytes(values) -> bytes:
    from array import array

    return bytes(memoryview(array("q", values)))


# ----------------------------------------------------------------------
# Shard-local compute (shared by the serial and process modes)
# ----------------------------------------------------------------------
class _ShardState:
    """One shard's working state: colors view, buckets, boundary/halo.

    ``colors`` is the full-length column (list in the pure-Python
    backend, int64 ndarray in the NumPy backend); only cells in
    ``[lo, hi)`` and the halo are kept current.  ``order`` labels nodes
    in exception messages and CONGEST envelopes; ``None`` means dense
    ids are the labels (CSR-direct topologies).
    """

    __slots__ = ("shard", "lo", "hi", "colors", "np", "by_color",
                 "sorted_ids", "sorted_colors", "boundary_mask",
                 "halo_mask", "boundary", "halo", "indptr", "indices",
                 "degrees", "order", "check_fanout")

    def __init__(self, shard, lo, hi):
        self.shard = shard
        self.lo = lo
        self.hi = hi
        self.np = None
        self.by_color = None
        self.sorted_ids = None
        self.sorted_colors = None
        self.boundary_mask = None
        self.halo_mask = None
        self.boundary = None
        self.halo = None
        self.order = None
        self.check_fanout = None


def _build_state(shard: int, lo: int, hi: int, compiled, colors,
                 bandwidth, want_numpy: bool, want_halo: bool
                 ) -> _ShardState:
    """Set up one shard's buckets and (optionally) boundary/halo sets.

    ``colors`` is the *initial* column; buckets are keyed on it, which
    stays correct for the whole run because recolored nodes land below
    ``target`` and every later active color is ``>= target``.
    """
    state = _ShardState(shard, lo, hi)
    state.indptr = compiled.indptr
    state.indices = compiled.indices
    state.degrees = compiled.degrees
    state.check_fanout = (None if type(bandwidth) is LocalModel
                          else bandwidth.check_fanout)
    np = arrays.get_numpy() if want_numpy else None
    views = compiled.numpy_views() if np is not None else None
    if views is not None:
        state.np = np
        state.indptr, state.indices, state.degrees = views
        state.colors = colors  # int64 ndarray, shared across shards
        local = colors[lo:hi]
        sorter = np.argsort(local, kind="stable")
        state.sorted_ids = sorter.astype(np.int64) + lo
        state.sorted_colors = local[sorter]
    else:
        state.colors = colors  # plain list, shared across shards
        by_color: Dict[int, list] = {}
        for i in range(lo, hi):
            by_color.setdefault(colors[i], []).append(i)
        state.by_color = by_color
    if want_halo:
        _build_halo(state)
    return state


def _build_halo(state: _ShardState) -> None:
    """Boundary/halo sets for the staging protocol (process mode)."""
    lo, hi = state.lo, state.hi
    np = state.np
    if np is not None:
        n = len(state.degrees)
        span = state.indices[state.indptr[lo]:state.indptr[hi]]
        external = (span < lo) | (span >= hi)
        halo = np.unique(span[external])
        halo_mask = np.zeros(n, dtype=bool)
        halo_mask[halo] = True
        # Per-node "any external neighbor": reduce the external flags
        # over each row of the span (guard empty shards/rows).
        boundary_mask = np.zeros(n, dtype=bool)
        if hi > lo and len(span):
            starts = (state.indptr[lo:hi] - state.indptr[lo])
            row_ext = np.zeros(hi - lo, dtype=bool)
            lengths = np.diff(
                np.append(starts, len(span))
            )
            nonempty = lengths > 0
            if nonempty.any():
                reduced = np.bitwise_or.reduceat(
                    external, starts[nonempty]
                )
                row_ext[nonempty] = reduced
            boundary_mask[lo:hi] = row_ext
        state.boundary_mask = boundary_mask
        state.halo_mask = halo_mask
    else:
        indptr, indices = state.indptr, state.indices
        boundary = set()
        halo = set()
        for i in range(lo, hi):
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if j < lo or j >= hi:
                    boundary.add(i)
                    halo.add(j)
        state.boundary = boundary
        state.halo = halo


def _round_broadcast(state: _ShardState, colors, bits: int, tag: str
                     ) -> Tuple[int, int]:
    """Round 1 over one shard: ``(copies, envelopes)`` plus CONGEST
    checks in ascending node order -- the exact serial prefix."""
    degrees = state.degrees
    lo, hi = state.lo, state.hi
    check_fanout = state.check_fanout
    copies = 0
    envelopes = 0
    if state.np is not None and check_fanout is None:
        local = degrees[lo:hi]
        copies = int(local.sum())
        envelopes = int((local > 0).sum())
        return copies, envelopes
    order = state.order
    for i in range(lo, hi):
        degree = degrees[i]
        if degree:
            if check_fanout is not None:
                label = order[i] if order is not None else i
                check_fanout(
                    intern_broadcast(label, tag, int(colors[i]), bits),
                    int(degree),
                )
            copies += int(degree)
            envelopes += 1
    return copies, envelopes


def _decide(state: _ShardState, active_color: int, target: int,
            bits: int, tag: str) -> Tuple[list, int, int]:
    """One decider round over one shard.

    Returns ``(updates, messages, broadcasts)`` with ``updates`` a list
    of ``(node, new_color)`` in ascending node order.  Raises the same
    :class:`AlgorithmFailure` / CONGEST exceptions, at the same node,
    as the serial kernel -- callers decide whether to re-raise locally
    (serial mode) or ship the failure to the parent (process mode).
    Updates are **not** applied here; same-round deciders must read the
    stale view.
    """
    if state.np is not None and state.check_fanout is None:
        return _decide_numpy(state, active_color, target)
    return _decide_python(state, active_color, target, bits, tag)


def _decide_python(state: _ShardState, active_color: int, target: int,
                   bits: int, tag: str) -> Tuple[list, int, int]:
    deciders = (state.by_color or {}).get(active_color, ())
    colors = state.colors
    indptr = state.indptr
    indices = state.indices
    degrees = state.degrees
    order = state.order
    check_fanout = state.check_fanout
    messages = 0
    broadcasts = 0
    updates = []
    for i in deciders:
        used = {colors[j] for j in indices[indptr[i]:indptr[i + 1]]}
        new_color = 0
        while new_color in used:
            new_color += 1
        if new_color >= target:
            label = order[i] if order is not None else i
            raise AlgorithmFailure(
                f"node {label!r}: no free color "
                f"below {target}; target must be at least Delta + 1"
            )
        updates.append((i, new_color))
        degree = degrees[i]
        if degree:
            if check_fanout is not None:
                label = order[i] if order is not None else i
                check_fanout(
                    intern_broadcast(label, tag, new_color, bits),
                    int(degree),
                )
            messages += int(degree)
            broadcasts += 1
    return updates, messages, broadcasts


def _decide_numpy(state: _ShardState, active_color: int, target: int
                  ) -> Tuple[list, int, int]:
    """Batched mex over every decider of the shard at once.

    The serial kernel only vectorizes per-decider tallies on
    high-degree rows; batching *across* deciders pays off exactly where
    that path declines (low degrees, huge decider sets).  The candidate
    loop runs at most ``max_row_degree + 1`` passes: each pass bumps the
    candidate of every decider whose current candidate appears among
    its neighbors, and a node's mex never exceeds its degree.
    """
    np = state.np
    left = np.searchsorted(state.sorted_colors, active_color, side="left")
    right = np.searchsorted(state.sorted_colors, active_color, side="right")
    deciders = state.sorted_ids[left:right]
    if not len(deciders):
        return [], 0, 0
    colors = state.colors
    indptr = state.indptr
    starts = indptr[deciders]
    lengths = indptr[deciders + 1] - starts
    total = int(lengths.sum())
    seg_id = np.repeat(np.arange(len(deciders)), lengths)
    offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = state.indices[
        np.repeat(starts, lengths) + (np.arange(total) - offsets)
    ]
    neighbor_colors = colors[flat]
    mex = np.zeros(len(deciders), dtype=np.int64)
    while True:
        hits = neighbor_colors == mex[seg_id]
        if not hits.any():
            break
        blocked = np.bincount(
            seg_id[hits], minlength=len(deciders)
        ).astype(bool)
        mex[blocked] += 1
    failing = np.nonzero(mex >= target)[0]
    if len(failing):
        # Deciders are ascending, so the first failing entry is the
        # globally smallest failing node of this shard.
        node = int(deciders[failing[0]])
        label = state.order[node] if state.order is not None else node
        raise AlgorithmFailure(
            f"node {label!r}: no free color "
            f"below {target}; target must be at least Delta + 1"
        )
    updates = list(zip(deciders.tolist(), mex.tolist()))
    return updates, total, int((lengths > 0).sum())


def _apply_updates(state: _ShardState, updates: list) -> None:
    colors = state.colors
    for i, new_color in updates:
        colors[i] = new_color


# ----------------------------------------------------------------------
# Worker side (process mode)
# ----------------------------------------------------------------------
#: Per-worker shard contexts, keyed by shard id, scoped to one run
#: token; a new token drops everything from the previous run.
_worker_run: Dict[str, Any] = {"token": None, "contexts": {}}


class _WorkerContext:
    __slots__ = ("state", "segment", "layout", "bounds", "spec_bits",
                 "q", "target", "bits", "tag", "rounds_total", "n",
                 "halo_in", "halo_out")

    def __init__(self):
        self.halo_in = 0
        self.halo_out = 0


def _attach_state_segment(name: str):
    from multiprocessing import shared_memory

    # Untracked: the parent owns the segment's lifecycle (see
    # shm._attach_untracked for why a worker must never register it).
    return shm._attach_untracked(shared_memory, name)


def _drop_worker_contexts() -> None:
    for ctx in _worker_run["contexts"].values():
        try:
            ctx.segment.close()
        except (BufferError, OSError):  # pragma: no cover - best effort
            pass
    _worker_run["contexts"].clear()


def _worker_drop(token) -> bool:
    """Parent-requested cleanup after a failed or finished run."""
    if _worker_run["token"] == token:
        _drop_worker_contexts()
        _worker_run["token"] = None
    return True


def _ensure_context(payload: Dict[str, Any]) -> _WorkerContext:
    token = payload["run"]
    if _worker_run["token"] != token:
        _drop_worker_contexts()
        _worker_run["token"] = token
    shard = payload["shard"]
    ctx = _worker_run["contexts"].get(shard)
    if ctx is not None:
        return ctx
    init = payload["init"]
    if payload["round"] != 1:  # pragma: no cover - affinity violated
        raise RuntimeError(
            f"shard {shard} context missing at round {payload['round']}"
        )
    key, handle = init["topology"]
    shm.receive_handles({key: handle})
    compiled = shm.lookup(key)
    if compiled is None:
        raise RuntimeError("worker could not attach the shared topology")
    ctx = _WorkerContext()
    ctx.segment = _attach_state_segment(init["state"])
    ctx.bounds = tuple(init["bounds"])
    ctx.n = init["n"]
    ctx.layout = _layout(ctx.n, ctx.bounds)
    ctx.q = init["q"]
    ctx.target = init["target"]
    ctx.bits = init["bits"]
    ctx.tag = init["tag"]
    ctx.rounds_total = init["rounds_total"]
    bandwidth = (pickle.loads(init["bandwidth"])
                 if init["bandwidth"] is not None else LocalModel())
    lo, hi = ctx.bounds[shard], ctx.bounds[shard + 1]
    np = arrays.get_numpy()
    initial = _read_cells(ctx.segment.buf, ctx.layout["init"], ctx.n)
    use_numpy = np is not None and type(bandwidth) is LocalModel
    colors = (np.array(initial, dtype=np.int64) if use_numpy else initial)
    ctx.state = _build_state(
        shard, lo, hi, compiled, colors, bandwidth,
        want_numpy=use_numpy, want_halo=True,
    )
    _worker_run["contexts"][shard] = ctx
    return ctx


def _apply_staged(ctx: _WorkerContext, round_number: int) -> None:
    """Ingest the previous round's boundary updates from other shards."""
    state = ctx.state
    epoch = (round_number - 1) % 2
    buf = ctx.segment.buf
    np = state.np
    for other in range(len(ctx.bounds) - 1):
        if other == state.shard:
            continue
        cell = _stage_cell(ctx.layout, epoch, other)
        count = _read_cells(buf, cell, 1)[0]
        if not count:
            continue
        pairs = _read_cells(buf, cell + 1, 2 * count)
        if np is not None:
            flat = np.array(pairs, dtype=np.int64).reshape(-1, 2)
            keep = state.halo_mask[flat[:, 0]]
            kept = flat[keep]
            state.colors[kept[:, 0]] = kept[:, 1]
            ctx.halo_in += 2 * _ITEMSIZE * int(keep.sum())
        else:
            halo = state.halo
            colors = state.colors
            for idx in range(count):
                node = pairs[2 * idx]
                if node in halo:
                    colors[node] = pairs[2 * idx + 1]
                    ctx.halo_in += 2 * _ITEMSIZE


def _stage_updates(ctx: _WorkerContext, round_number: int,
                   updates: list) -> None:
    """Publish this shard's boundary updates for the next round."""
    state = ctx.state
    epoch = round_number % 2
    cell = _stage_cell(ctx.layout, epoch, state.shard)
    buf = ctx.segment.buf
    np = state.np
    if np is not None:
        if updates:
            pairs = np.array(updates, dtype=np.int64)
            keep = state.boundary_mask[pairs[:, 0]]
            staged = pairs[keep]
        else:
            staged = ()
        count = len(staged)
        _write_bytes(buf, cell, _int64_bytes([count]))
        if count:
            _write_bytes(buf, cell + 1, staged.tobytes())
            ctx.halo_out += 2 * _ITEMSIZE * count
    else:
        boundary = state.boundary
        staged = [pair for pair in updates if pair[0] in boundary]
        _write_bytes(buf, cell, _int64_bytes([len(staged)]))
        if staged:
            flat = [cell_value for pair in staged for cell_value in pair]
            _write_bytes(buf, cell + 1, _int64_bytes(flat))
            ctx.halo_out += 2 * _ITEMSIZE * len(staged)


def _worker_round(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One shard-round in a pool worker; never raises, ships failures."""
    try:
        ctx = _ensure_context(payload)
        state = ctx.state
        round_number = payload["round"]
        start = time.perf_counter()
        if round_number == 1:
            copies, envelopes = _round_broadcast(
                state, state.colors, ctx.bits, ctx.tag
            )
            result = {
                "ok": True,
                "messages": copies,
                "bits": copies * ctx.bits,
                "max_message_bits": ctx.bits if copies else 0,
                "broadcasts": envelopes,
            }
        elif round_number >= ctx.rounds_total:
            lo, hi = state.lo, state.hi
            if hi > lo:
                final = state.colors[lo:hi]
                raw = (final.tobytes() if state.np is not None
                       else _int64_bytes(final))
                _write_bytes(
                    ctx.segment.buf, ctx.layout["final"] + lo, raw
                )
            result = {"ok": True, "messages": 0, "bits": 0,
                      "max_message_bits": 0, "broadcasts": 0,
                      "terminal": True}
        else:
            _apply_staged(ctx, round_number)
            active_color = ctx.q - round_number + 1
            updates, messages, broadcasts = _decide(
                state, active_color, ctx.target, ctx.bits, ctx.tag
            )
            _stage_updates(ctx, round_number, updates)
            _apply_updates(state, updates)
            result = {
                "ok": True,
                "messages": messages,
                "bits": messages * ctx.bits,
                "max_message_bits": ctx.bits if messages else 0,
                "broadcasts": broadcasts,
            }
        result["halo_in"] = ctx.halo_in
        result["halo_out"] = ctx.halo_out
        result["compute_s"] = time.perf_counter() - start
        return result
    except Exception as error:  # ship it; the parent re-raises in order
        return {"ok": False, "error": error}


# ----------------------------------------------------------------------
# Parent side: the persistent shard-pinned worker lanes
# ----------------------------------------------------------------------
#: One single-worker process pool per shard index.  Affinity matters:
#: a shard's context (colors, buckets, halo sets) lives in exactly one
#: worker, so every round of shard ``s`` must land on lane ``s``.
_lanes: List[Any] = []
_lanes_atexit = False

#: Topologies this module published for its own runs, kept alive (and
#: keyed by object identity) so repeated runs on one topology reuse the
#: same segment instead of re-copying the CSR every run.
_published: Dict[int, Tuple[Any, dict, Any]] = {}
_publish_seq = 0


def _close_lanes() -> None:
    global _lanes
    lanes, _lanes = _lanes, []
    for lane in lanes:
        try:
            lane.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


def _ensure_lanes(shards: int) -> Optional[List[Any]]:
    """Warm single-worker process lanes 0..shards-1, or ``None``."""
    global _lanes_atexit
    from .parallel import PoolUnavailable, WorkerPool

    if not _lanes_atexit:
        atexit.register(_close_lanes)
        _lanes_atexit = True
    while len(_lanes) < shards:
        lane = WorkerPool(max_workers=1, engine="fast")
        try:
            lane.warm()
        except PoolUnavailable:
            lane.close()
            return None
        if lane.mode != "process":
            lane.close()
            return None
        _lanes.append(lane)
    return _lanes[:shards]


def _topology_handle(compiled) -> Optional[Tuple[Any, dict]]:
    """``(key, handle)`` for ``compiled`` in shared memory.

    Reuses an existing publication of the same object (e.g. an interned
    streaming topology a sweep already published) before making one of
    our own under a run-scoped key.
    """
    global _publish_seq
    for key, entry in list(shm._exported.items()):
        if entry[2] is compiled:
            return key, entry[1]
    cached = _published.get(id(compiled))
    if cached is not None and cached[2] is compiled:
        return cached[0], cached[1]
    _publish_seq += 1
    key = ("sharded-topology", os.getpid(), _publish_seq)
    handle = shm.publish(key, compiled)
    if handle is None:
        return None
    # Strong reference keeps id(compiled) stable for the cache's life.
    _published[id(compiled)] = (key, handle, compiled)
    return key, handle


class _ProcessUnavailable(Exception):
    """Internal: process mode cannot run here; fall back to serial."""


class _ProcessRunner:
    """Parent-side orchestration of one process-mode run.

    The parent drives rounds: it submits one task per shard per round
    and gathers the futures -- the gather *is* the barrier.  Per-shard
    barrier wait is the gap between that shard's completion and the
    round's last completion, accumulated across rounds.
    """

    def __init__(self, compiled, spec: ShardSpec, partition: Partition,
                 bandwidth):
        self.n = compiled.n
        self.partition = partition
        self.spec = spec
        k = partition.shards
        if type(bandwidth) is LocalModel:
            bandwidth_bytes = None
        else:
            try:
                bandwidth_bytes = pickle.dumps(bandwidth)
            except Exception as error:
                raise _ProcessUnavailable(
                    f"bandwidth model not picklable: {error}"
                ) from error
        topology = _topology_handle(compiled)
        if topology is None:
            raise _ProcessUnavailable("shared memory unusable")
        lanes = _ensure_lanes(k)
        if lanes is None:
            raise _ProcessUnavailable("process pool unusable")
        self.lanes = lanes
        self.layout = _layout(self.n, partition.bounds)
        try:
            from multiprocessing import shared_memory

            self.segment = shared_memory.SharedMemory(
                create=True,
                size=max(1, _ITEMSIZE * self.layout["cells"]),
            )
        except (OSError, PermissionError, ValueError) as error:
            raise _ProcessUnavailable(
                f"state segment unavailable: {error}"
            ) from error
        _write_bytes(self.segment.buf, self.layout["init"],
                     _int64_bytes(spec.colors))
        self.token = (os.getpid(), time.monotonic_ns())
        self.base = {
            "n": self.n,
            "bounds": partition.bounds,
            "q": spec.q,
            "target": spec.target,
            "bits": spec.bits,
            "tag": spec.tag,
            "rounds_total": spec.total_rounds,
            "state": self.segment.name,
            "topology": topology,
            "bandwidth": bandwidth_bytes,
        }
        self.barrier_wait_s = [0.0] * k
        self.halo_in = [0] * k
        self.halo_out = [0] * k
        self.compute_s = [0.0] * k

    def round(self, round_number: int) -> Tuple[int, int, int, int]:
        k = self.partition.shards
        done = [0.0] * k
        futures = []
        for shard in range(k):
            payload = {
                "run": self.token,
                "shard": shard,
                "round": round_number,
                "init": self.base,
            }
            future = self.lanes[shard].submit(_worker_round, payload)

            def _stamp(_f, shard=shard):
                done[shard] = time.perf_counter()

            future.add_done_callback(_stamp)
            futures.append(future)
        results = [future.result() for future in futures]
        last = max(done)
        for shard in range(k):
            self.barrier_wait_s[shard] += last - done[shard]
        failures = [
            (shard, result) for shard, result in enumerate(results)
            if not result["ok"]
        ]
        if failures:
            # Shard ranges ascend with the shard index, so the lowest
            # failing shard holds the globally first failing node --
            # exactly the serial engines' exception order.
            raise failures[0][1]["error"]
        messages = bits = broadcasts = 0
        max_bits = 0
        for shard, result in enumerate(results):
            messages += result["messages"]
            bits += result["bits"]
            broadcasts += result["broadcasts"]
            if result["max_message_bits"] > max_bits:
                max_bits = result["max_message_bits"]
            self.halo_in[shard] = result["halo_in"]
            self.halo_out[shard] = result["halo_out"]
            self.compute_s[shard] += result["compute_s"]
        return messages, bits, max_bits, broadcasts

    def final_colors(self) -> List[int]:
        return _read_cells(self.segment.buf, self.layout["final"], self.n)

    def close(self) -> None:
        from .parallel import PoolUnavailable

        drops = []
        for lane in self.lanes:
            try:
                drops.append(lane.submit(_worker_drop, self.token))
            except PoolUnavailable:  # pragma: no cover - closing pool
                pass
        for drop in drops:
            try:
                drop.result(timeout=10)
            except Exception:  # pragma: no cover - best effort cleanup
                pass
        try:
            self.segment.close()
            self.segment.unlink()
        except (BufferError, OSError):  # pragma: no cover - best effort
            pass


class _SerialRunner:
    """The same shard execution, in-process, over one shared column.

    Shards still compute independently against the stale round-start
    view (updates are applied only at the round boundary) and their
    charges merge in shard index order -- byte-identical to process
    mode and to the serial engines, minus the segment plumbing.  Used
    for small graphs, inside pool workers, for non-CSR-direct
    topologies, and wherever shared memory or pools are unusable.
    """

    def __init__(self, compiled, spec: ShardSpec, partition: Partition,
                 bandwidth):
        self.spec = spec
        self.partition = partition
        np = arrays.get_numpy()
        use_numpy = np is not None and type(bandwidth) is LocalModel
        if use_numpy and compiled.numpy_views() is None:  # pragma: no cover
            use_numpy = False
        self.colors = (np.array(spec.colors, dtype=np.int64)
                       if use_numpy else list(spec.colors))
        order = compiled.order
        dense = isinstance(order, range)
        self.states = []
        for shard in range(partition.shards):
            lo, hi = partition.range_of(shard)
            state = _build_state(
                shard, lo, hi, compiled, self.colors, bandwidth,
                want_numpy=use_numpy, want_halo=False,
            )
            if not dense:
                state.order = order
            self.states.append(state)
        self.barrier_wait_s = [0.0] * partition.shards
        self.halo_in = [0] * partition.shards
        self.halo_out = [0] * partition.shards
        self.compute_s = [0.0] * partition.shards

    def round(self, round_number: int) -> Tuple[int, int, int, int]:
        spec = self.spec
        messages = bits = broadcasts = 0
        max_bits = 0
        if round_number >= spec.total_rounds:
            return 0, 0, 0, 0
        all_updates: List[list] = []
        for state in self.states:
            start = time.perf_counter()
            if round_number == 1:
                copies, envelopes = _round_broadcast(
                    state, self.colors, spec.bits, spec.tag
                )
                shard_messages, shard_broadcasts = copies, envelopes
            else:
                updates, shard_messages, shard_broadcasts = _decide(
                    state, spec.q - round_number + 1, spec.target,
                    spec.bits, spec.tag,
                )
                all_updates.append(updates)
            messages += shard_messages
            broadcasts += shard_broadcasts
            self.compute_s[state.shard] += time.perf_counter() - start
        for updates in all_updates:
            for i, new_color in updates:
                self.colors[i] = new_color
        bits = messages * spec.bits
        if messages:
            max_bits = spec.bits
        return messages, bits, max_bits, broadcasts

    def final_colors(self) -> List[int]:
        if isinstance(self.colors, list):
            return self.colors
        return self.colors.tolist()

    def close(self) -> None:
        return None


# ----------------------------------------------------------------------
# Engine entry point
# ----------------------------------------------------------------------
def run_sharded(scheduler, max_rounds: int):
    """``Scheduler.run(engine="sharded")`` lands here.

    Mirrors ``_run_vectorized``'s eligibility chain, then executes the
    population shard-wise -- in the persistent worker lanes when the
    run is big and CSR-direct, serially in-process otherwise.  Anything
    the sharded registry cannot cover falls through to the vectorized
    engine (which applies its own fallback chain), so ``sharded`` is
    always a safe default engine.
    """
    from .kernels import _record_hit

    def fall_back(reason: str):
        _record_shard_fallback(reason)
        return scheduler._run_vectorized(max_rounds)

    if scheduler.observer is not None:
        return fall_back("observer")
    if scheduler.stop_when is not None:
        return fall_back("stop_when")
    programs_map = scheduler.programs
    if not programs_map:
        return fall_back("empty")
    iterator = iter(programs_map.values())
    cls = next(iterator).__class__
    for program in iterator:
        if program.__class__ is not cls:
            return fall_back("mixed")
    builder = _registry.get(cls)
    if builder is None:
        return fall_back("unregistered")
    shards = default_shards()
    if shards <= 1:
        return fall_back("single-shard")

    compiled = scheduler.network.compile()
    programs = [programs_map[node] for node in compiled.order]
    warmup_start = time.perf_counter()
    spec = builder(compiled, programs, scheduler.bandwidth)
    if spec is None:
        return fall_back("declined")
    partition = partition_by_edges(compiled.indptr, shards)

    runner = None
    mode = "serial"
    if (not _in_worker and compiled.n >= MIN_SHARD_NODES
            and isinstance(compiled.order, range)):
        try:
            runner = _ProcessRunner(
                compiled, spec, partition, scheduler.bandwidth
            )
            mode = "process"
        except _ProcessUnavailable:
            runner = None
    if runner is None:
        runner = _SerialRunner(
            compiled, spec, partition, scheduler.bandwidth
        )
    warmup_s = time.perf_counter() - warmup_start

    _stats.runs += 1
    _stats.engaged += 1
    _stats.by_shards[shards] = _stats.by_shards.get(shards, 0) + 1
    _stats.by_mode[mode] = _stats.by_mode.get(mode, 0) + 1
    obs_metrics.counter(
        "repro_shard_runs_total",
        "Engaged sharded-engine runs by mode and shard count",
        ("mode", "shards"),
    ).labels(mode=mode, shards=shards).inc()
    # Both runners make this same backend choice internally; recompute
    # it here for the stats label (physical metadata, outside the
    # byte-identity contract).
    backend = ("numpy"
               if arrays.get_numpy() is not None
               and type(scheduler.bandwidth) is LocalModel
               and compiled.numpy_views() is not None
               else "python")
    _record_hit(f"Sharded{spec.name}Kernel", warmup_s,
                f"{backend}-x{shards}")

    ledger = scheduler.ledger
    rounds = 0
    messages = bits = broadcasts = 0
    max_bits = 0
    total = spec.total_rounds
    try:
        try:
            for round_number in range(1, total + 1):
                if round_number > max_rounds:
                    raise RoundLimitExceeded(max_rounds, len(programs))
                (round_messages, round_bits, round_max_bits,
                 round_broadcasts) = runner.round(round_number)
                rounds += 1
                messages += round_messages
                bits += round_bits
                broadcasts += round_broadcasts
                if round_max_bits > max_bits:
                    max_bits = round_max_bits
        finally:
            if rounds:
                ledger.charge_batch(
                    rounds,
                    messages=messages,
                    bits=bits,
                    max_message_bits=max_bits,
                    broadcasts=broadcasts,
                )
            per_shard = [
                {
                    "shard": shard,
                    "nodes": (partition.bounds[shard + 1]
                              - partition.bounds[shard]),
                    "halo_in_bytes": runner.halo_in[shard],
                    "halo_out_bytes": runner.halo_out[shard],
                    "barrier_wait_s": runner.barrier_wait_s[shard],
                    "compute_s": runner.compute_s[shard],
                }
                for shard in range(partition.shards)
            ]
            halo_total = sum(runner.halo_in) + sum(runner.halo_out)
            _stats.halo_bytes += halo_total
            _stats.barrier_wait_s += sum(runner.barrier_wait_s)
            if halo_total:
                obs_metrics.counter(
                    "repro_shard_halo_bytes_total",
                    "Boundary state exchanged between shards",
                ).inc(halo_total)
            barrier_total = sum(runner.barrier_wait_s)
            if barrier_total:
                obs_metrics.counter(
                    "repro_shard_barrier_wait_seconds_total",
                    "Wall-clock shards spent waiting at round barriers",
                ).inc(barrier_total)
            # Busiest-shard compute over the mean: 1.0 is a perfectly
            # balanced partition.  A gauge -- it describes the most
            # recent engaged run, not an accumulating total.
            compute = [entry["compute_s"] for entry in per_shard]
            mean_compute = sum(compute) / len(compute) if compute else 0.0
            if mean_compute > 0:
                obs_metrics.gauge(
                    "repro_shard_skew_ratio",
                    "Busiest shard compute time over the mean "
                    "(last engaged run)",
                ).set(max(compute) / mean_compute)
            _stats.last_run = {
                "shards": partition.shards,
                "mode": mode,
                "backend": backend,
                "rounds": rounds,
                "halo_bytes": halo_total,
                "barrier_wait_s": sum(runner.barrier_wait_s),
                "per_shard": per_shard,
            }
        final = runner.final_colors()
        spec.finalize(final, programs)
        scheduler.rounds_executed = total
        return ledger
    finally:
        runner.close()
