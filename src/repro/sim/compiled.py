"""Compiled topologies: dense integer ids and CSR adjacency arrays.

A :class:`Network` stores adjacency as hashable-keyed dicts, which is the
right interface for protocol code but a poor substrate for the scheduler's
hot loop: every neighbor lookup hashes a node object and every per-node
table is a dict.  A :class:`CompiledNetwork` is the one-time "compilation"
of a network into flat arrays:

* nodes are mapped to dense integers ``0..n-1`` in the network's insertion
  order (``order[i]`` is the node object, ``index[node]`` its integer id);
* adjacency is stored in CSR form -- ``indices[indptr[i]:indptr[i + 1]]``
  are the dense ids of node ``i``'s neighbors, in the same order as
  ``Network.neighbors`` returns them;
* per-node views the scheduler needs every round (neighbor object tuples,
  neighbor sets, degrees) are precomputed once.

Because :class:`Network` is immutable, the compilation is cached on the
network itself: ``network.compile()`` builds it on first use and returns
the same instance afterwards.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterator, List, Tuple

Node = Hashable

#: Array typecode for dense ids; ``q`` (signed 64-bit) keeps the arrays
#: valid for any graph size we can hold in memory.
_ID_TYPECODE = "q"


class CompiledNetwork:
    """Dense-integer, CSR-array view of an immutable :class:`Network`."""

    __slots__ = (
        "n",
        "m",
        "order",
        "index",
        "indptr",
        "indices",
        "degrees",
        "neighbor_objects",
        "neighbor_sets",
        "neighbor_id_tuples",
        "_numpy_views",
    )

    def __init__(self, order: Tuple[Node, ...], index: Dict[Node, int],
                 indptr: array, indices: array,
                 neighbor_objects: Tuple[Tuple[Node, ...], ...],
                 neighbor_sets: Tuple[frozenset, ...]):
        self.n = len(order)
        self.m = len(indices) // 2
        self.order = order
        self.index = index
        self.indptr = indptr
        self.indices = indices
        self.degrees = array(
            _ID_TYPECODE,
            (indptr[i + 1] - indptr[i] for i in range(self.n)),
        )
        self.neighbor_objects = neighbor_objects
        self.neighbor_sets = neighbor_sets
        #: Per-node CSR rows materialized as tuples of plain ints: the
        #: scheduler's broadcast fan-out iterates a node's full neighbor
        #: row every time, and tuple iteration beats repeated ``array``
        #: indexing on that hot path.
        self.neighbor_id_tuples = tuple(
            tuple(indices[indptr[i]:indptr[i + 1]]) for i in range(self.n)
        )
        self._numpy_views = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network) -> "CompiledNetwork":
        """Compile ``network``; prefer :meth:`Network.compile` (cached)."""
        order: Tuple[Node, ...] = tuple(network)
        index: Dict[Node, int] = {node: i for i, node in enumerate(order)}
        indptr = array(_ID_TYPECODE, [0])
        indices = array(_ID_TYPECODE)
        neighbor_objects: List[Tuple[Node, ...]] = []
        for node in order:
            neighbors = network.neighbors(node)
            neighbor_objects.append(neighbors)
            indices.extend(index[neighbor] for neighbor in neighbors)
            indptr.append(len(indices))
        neighbor_sets = tuple(
            network.neighbor_set(node) for node in order
        )
        return cls(order, index, indptr, indices,
                   tuple(neighbor_objects), neighbor_sets)

    # ------------------------------------------------------------------
    # Queries (dense-id domain)
    # ------------------------------------------------------------------
    def neighbor_ids(self, i: int) -> array:
        """Dense ids of node ``i``'s neighbors (CSR slice)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def degree(self, i: int) -> int:
        return self.indptr[i + 1] - self.indptr[i]

    def numpy_views(self):
        """``(indptr, indices, degrees)`` as int64 ndarrays, or ``None``.

        Zero-copy views over the CSR ``array('q')`` buffers (both use
        native 64-bit ints), built lazily on first use and cached for
        the compiled network's lifetime.  Returns ``None`` whenever the
        NumPy backend is unavailable or disabled
        (``REPRO_SIM_ARRAYS=0``), so kernels can use this as their
        backend probe.
        """
        from .arrays import get_numpy

        np = get_numpy()
        if np is None:
            return None
        if self._numpy_views is None:
            indptr = np.frombuffer(self.indptr, dtype=np.int64)
            indices = np.frombuffer(self.indices, dtype=np.int64)
            degrees = np.frombuffer(self.degrees, dtype=np.int64)
            self._numpy_views = (indptr, indices, degrees)
        return self._numpy_views

    def max_degree(self) -> int:
        """Maximum degree without the paper's floor of 2."""
        return max(self.degrees, default=0)

    def has_edge_ids(self, i: int, j: int) -> bool:
        return self.order[j] in self.neighbor_sets[i]

    def edge_ids(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge once, as ``(i, j)`` dense-id pairs.

        Emitted in the same sequence as :meth:`Network.edges` -- for every
        node ``i`` in order, the neighbors ``j`` with ``i < j``.
        """
        indptr = self.indptr
        indices = self.indices
        for i in range(self.n):
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if i < j:
                    yield (i, j)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledNetwork(n={self.n}, m={self.m})"
