"""Compiled topologies: dense integer ids and CSR adjacency arrays.

A :class:`Network` stores adjacency as hashable-keyed dicts, which is the
right interface for protocol code but a poor substrate for the scheduler's
hot loop: every neighbor lookup hashes a node object and every per-node
table is a dict.  A :class:`CompiledNetwork` is the one-time "compilation"
of a network into flat arrays:

* nodes are mapped to dense integers ``0..n-1`` in the network's insertion
  order (``order[i]`` is the node object, ``index[node]`` its integer id);
* adjacency is stored in CSR form -- ``indices[indptr[i]:indptr[i + 1]]``
  are the dense ids of node ``i``'s neighbors, in the same order as
  ``Network.neighbors`` returns them;
* per-node views the scheduler needs every round (neighbor object tuples,
  neighbor sets, neighbor-id tuples, degrees) are built lazily on first
  use and cached -- a run that never touches them (the vectorized engine
  over CSR-only kernels) holds nothing but the flat arrays, which is what
  makes n = 10^6 topologies fit.

Because :class:`Network` is immutable, the compilation is cached on the
network itself: ``network.compile()`` builds it on first use and returns
the same instance afterwards.

A compiled network can also exist *without* any :class:`Network` behind
it: :meth:`CompiledNetwork.from_csr` wraps raw CSR buffers (the streaming
generators in :mod:`repro.graphs.streaming` emit edges straight into
them), and the Network-facade methods (``nodes`` / ``neighbors`` /
``has_edge`` / ``compile`` returning ``self`` / iteration) make the
result a drop-in topology for :class:`~repro.sim.scheduler.Scheduler`
and :func:`~repro.sim.scheduler.run_protocol` on every engine.  The one
facade caveat: :meth:`max_degree` keeps its historical no-floor meaning
here; Network-style consumers should call :meth:`raw_max_degree` (alias)
or apply the paper's floor of 2 themselves.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

Node = Hashable

#: Array typecode for dense ids; ``q`` (signed 64-bit) keeps the arrays
#: valid for any graph size we can hold in memory.
_ID_TYPECODE = "q"


class _DenseIndex:
    """Identity ``node -> dense id`` mapping for ``order == range(n)``.

    CSR-direct topologies name their nodes by dense id already, so the
    ``index`` mapping is the identity -- this stand-in answers lookups
    without materializing an n-entry dict.
    """

    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = n

    def __getitem__(self, node) -> int:
        if isinstance(node, int) and not isinstance(node, bool) \
                and 0 <= node < self.n:
            return node
        raise KeyError(node)

    def __contains__(self, node) -> bool:
        return (isinstance(node, int) and not isinstance(node, bool)
                and 0 <= node < self.n)

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(range(self.n))


class CompiledNetwork:
    """Dense-integer, CSR-array view of an undirected topology."""

    __slots__ = (
        "n",
        "m",
        "order",
        "indptr",
        "indices",
        "_index",
        "_degrees",
        "_neighbor_objects",
        "_neighbor_sets",
        "_neighbor_id_tuples",
        "_numpy_views",
    )

    def __init__(self, order, index: Optional[Dict[Node, int]],
                 indptr, indices,
                 neighbor_objects: Optional[Tuple[Tuple[Node, ...], ...]] = None,
                 neighbor_sets: Optional[Tuple[frozenset, ...]] = None):
        self.n = len(order)
        self.m = len(indices) // 2
        self.order = order
        self.indptr = indptr
        self.indices = indices
        self._index = index
        self._degrees = None
        self._neighbor_objects = neighbor_objects
        self._neighbor_sets = neighbor_sets
        self._neighbor_id_tuples = None
        self._numpy_views = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network) -> "CompiledNetwork":
        """Compile ``network``; prefer :meth:`Network.compile` (cached)."""
        order: Tuple[Node, ...] = tuple(network)
        index: Dict[Node, int] = {node: i for i, node in enumerate(order)}
        indptr = array(_ID_TYPECODE, [0])
        indices = array(_ID_TYPECODE)
        neighbor_objects: List[Tuple[Node, ...]] = []
        for node in order:
            neighbors = network.neighbors(node)
            neighbor_objects.append(neighbors)
            indices.extend(index[neighbor] for neighbor in neighbors)
            indptr.append(len(indices))
        # The network's own neighbor tuples/frozensets are captured by
        # reference (no new per-node objects); the id tuples and degree
        # array are left to the lazy properties.
        neighbor_sets = tuple(
            network.neighbor_set(node) for node in order
        )
        return cls(order, index, indptr, indices,
                   tuple(neighbor_objects), neighbor_sets)

    @classmethod
    def from_csr(cls, indptr, indices, order=None) -> "CompiledNetwork":
        """Wrap raw CSR buffers directly -- no :class:`Network` involved.

        ``indptr``/``indices`` may be ``array('q')``, int64 ndarrays, or
        ``memoryview('q')`` slices of a shared-memory segment; they are
        held by reference, never copied.  The caller guarantees CSR
        validity (symmetric, no self-loops, ``indptr`` monotone starting
        at 0 and ending at ``len(indices)``); only the cheap frame
        invariants are checked here.  ``order`` defaults to the dense
        ids themselves (``range(n)``), which is what the streaming
        generators use -- nodes then *are* their integer ids, and the
        ``index`` mapping is the identity.
        """
        n = len(indptr) - 1
        if n < 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or (n >= 0 and indptr[n] != len(indices)):
            raise ValueError(
                "indptr must start at 0 and end at len(indices)"
            )
        if order is None:
            order = range(n)
        elif len(order) != n:
            raise ValueError("order length must match indptr")
        return cls(order, None, indptr, indices)

    # ------------------------------------------------------------------
    # Lazy per-node views
    # ------------------------------------------------------------------
    @property
    def index(self):
        """``node -> dense id`` mapping (identity for CSR-direct nets)."""
        if self._index is None:
            order = self.order
            if isinstance(order, range) and order == range(self.n):
                self._index = _DenseIndex(self.n)
            else:
                self._index = {node: i for i, node in enumerate(order)}
        return self._index

    @property
    def degrees(self):
        """Per-node degrees as an ``array('q')``, built on first use."""
        if self._degrees is None:
            indptr = self.indptr
            self._degrees = array(
                _ID_TYPECODE,
                (indptr[i + 1] - indptr[i] for i in range(self.n)),
            )
        return self._degrees

    @property
    def neighbor_objects(self) -> Tuple[Tuple[Node, ...], ...]:
        """Per-node neighbor tuples in CSR row order."""
        if self._neighbor_objects is None:
            order = self.order
            indptr = self.indptr
            indices = self.indices
            self._neighbor_objects = tuple(
                tuple(order[j] for j in indices[indptr[i]:indptr[i + 1]])
                for i in range(self.n)
            )
        return self._neighbor_objects

    @property
    def neighbor_sets(self) -> Tuple[frozenset, ...]:
        """Per-node neighbor frozensets (O(1) membership)."""
        if self._neighbor_sets is None:
            self._neighbor_sets = tuple(
                frozenset(row) for row in self.neighbor_objects
            )
        return self._neighbor_sets

    @property
    def neighbor_id_tuples(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-node CSR rows materialized as tuples of plain ints: the
        scheduler's broadcast fan-out iterates a node's full neighbor
        row every time, and tuple iteration beats repeated ``array``
        indexing on that hot path.  Built on first fast-engine run;
        kernel-only runs never pay for it.
        """
        if self._neighbor_id_tuples is None:
            indptr = self.indptr
            indices = self.indices
            self._neighbor_id_tuples = tuple(
                tuple(int(j) for j in indices[indptr[i]:indptr[i + 1]])
                for i in range(self.n)
            )
        return self._neighbor_id_tuples

    # ------------------------------------------------------------------
    # Queries (dense-id domain)
    # ------------------------------------------------------------------
    def neighbor_ids(self, i: int):
        """Dense ids of node ``i``'s neighbors (CSR slice)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def degree(self, i: int) -> int:
        return self.indptr[i + 1] - self.indptr[i]

    def numpy_views(self):
        """``(indptr, indices, degrees)`` as int64 ndarrays, or ``None``.

        Zero-copy views over the CSR buffers (``array('q')``,
        shared-memory ``memoryview``, or ndarray -- all native 64-bit
        ints), built lazily on first use and cached for the compiled
        network's lifetime.  Returns ``None`` whenever the NumPy backend
        is unavailable or disabled (``REPRO_SIM_ARRAYS=0``), so kernels
        can use this as their backend probe.
        """
        from .arrays import get_numpy

        np = get_numpy()
        if np is None:
            return None
        if self._numpy_views is None:
            indptr = np.frombuffer(self.indptr, dtype=np.int64)
            indices = np.frombuffer(self.indices, dtype=np.int64)
            degrees = np.frombuffer(self.degrees, dtype=np.int64)
            self._numpy_views = (indptr, indices, degrees)
        return self._numpy_views

    def max_degree(self) -> int:
        """Maximum degree without the paper's floor of 2."""
        return max(self.degrees, default=0)

    def has_edge_ids(self, i: int, j: int) -> bool:
        indptr = self.indptr
        indices = self.indices
        for k in range(indptr[i], indptr[i + 1]):
            if indices[k] == j:
                return True
        return False

    def edge_ids(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge once, as ``(i, j)`` dense-id pairs.

        Emitted in the same sequence as :meth:`Network.edges` -- for every
        node ``i`` in order, the neighbors ``j`` with ``i < j``.
        """
        indptr = self.indptr
        indices = self.indices
        for i in range(self.n):
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if i < j:
                    yield (i, int(j))

    # ------------------------------------------------------------------
    # Network facade (CompiledNetwork-only scheduler entry)
    # ------------------------------------------------------------------
    @property
    def nodes(self):
        """The node objects, in dense-id order (Network facade)."""
        return self.order

    def __iter__(self) -> Iterator[Node]:
        return iter(self.order)

    def __contains__(self, node: Node) -> bool:
        return node in self.index

    def compile(self) -> "CompiledNetwork":
        """A compiled network is its own compilation (Network facade)."""
        return self

    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """The node's neighbors, in CSR row order (Network facade)."""
        return self.neighbor_objects[self.index[node]]

    def neighbor_set(self, node: Node) -> frozenset:
        """The node's neighbors as a frozenset (Network facade)."""
        return self.neighbor_sets[self.index[node]]

    def has_edge(self, u: Node, v: Node) -> bool:
        """True iff ``{u, v}`` is an edge (Network facade).

        Scans the CSR row directly instead of forcing the per-node
        frozensets into existence (those are cached if already built).
        """
        index = self.index
        try:
            i = index[u]
            j = index[v]
        except KeyError:
            return False
        if self._neighbor_sets is not None:
            return self.order[j] in self._neighbor_sets[i]
        return self.has_edge_ids(i, j)

    def raw_max_degree(self) -> int:
        """Maximum degree without the paper's floor of 2 (Network facade)."""
        return max(self.degrees, default=0)

    def edge_count(self) -> int:
        """The number of undirected edges (Network facade)."""
        return self.m

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Each undirected edge once as node-object pairs (Network facade)."""
        order = self.order
        for i, j in self.edge_ids():
            yield (order[i], order[j])

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledNetwork(n={self.n}, m={self.m})"
