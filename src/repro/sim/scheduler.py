"""The synchronous round scheduler.

Runs one :class:`~repro.sim.node.NodeProgram` per node in lock step:

1. every active node is called with the messages delivered this round,
2. the messages it queues are validated against the bandwidth model and
   buffered,
3. buffered messages are delivered at the start of the next round.

This matches the paper's model: in every round a node can send a
(potentially different) message to each neighbor, receive the neighbors'
messages, and perform arbitrary internal computation.

The scheduler terminates when every node has halted and no messages are in
flight, and charges the measured rounds/messages/bits to a
:class:`~repro.sim.metrics.CostLedger` so that composed protocols share one
meter.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from .congest import BandwidthModel, LocalModel
from .errors import NetworkError, RoundLimitExceeded, SchedulerError
from .message import Message
from .metrics import CostLedger, ensure_ledger
from .network import Network
from .node import NodeProgram, RoundContext

Node = Hashable

#: Safety net so buggy protocols fail loudly instead of spinning forever.
DEFAULT_MAX_ROUNDS = 1_000_000


class Scheduler:
    """Drives a set of node programs over a network until all halt."""

    def __init__(self, network: Network,
                 programs: Mapping[Node, NodeProgram],
                 bandwidth: Optional[BandwidthModel] = None,
                 ledger: Optional[CostLedger] = None,
                 observer=None,
                 stop_when=None):
        missing = set(network.nodes) - set(programs)
        if missing:
            raise SchedulerError(f"nodes without a program: {sorted(map(repr, missing))}")
        extra = set(programs) - set(network.nodes)
        if extra:
            raise SchedulerError(f"programs for unknown nodes: {sorted(map(repr, extra))}")
        self.network = network
        self.programs = dict(programs)
        self.bandwidth = bandwidth if bandwidth is not None else LocalModel()
        self.ledger = ensure_ledger(ledger)
        #: Optional RoundObserver receiving per-round event records.
        self.observer = observer
        #: Optional global-quiescence oracle: ``stop_when(programs)`` is
        #: evaluated after every round and ends the run when true.  This
        #: models an external termination detector -- protocols whose
        #: nodes cannot decide termination locally (e.g. parallel local
        #: search) use it instead of per-node halting.
        self.stop_when = stop_when
        self.rounds_executed = 0

    def run(self, max_rounds: int = DEFAULT_MAX_ROUNDS) -> CostLedger:
        """Run to quiescence; returns the ledger for convenience."""
        halted: Dict[Node, bool] = {node: False for node in self.network}
        pending: Dict[Node, List[Message]] = {node: [] for node in self.network}
        round_number = 0
        while True:
            active = [node for node in self.network if not halted[node]]
            in_flight = any(pending[node] for node in self.network)
            if not active and not in_flight:
                break
            if round_number >= max_rounds:
                raise RoundLimitExceeded(max_rounds, len(active))
            round_number += 1

            inboxes = pending
            pending = {node: [] for node in self.network}
            round_messages = 0
            round_bits = 0
            round_max_bits = 0
            sent_this_round: List[Message] = []
            halted_this_round: List[Node] = []

            for node in self.network:
                if halted[node]:
                    if inboxes[node]:
                        # Late messages to a halted node are dropped; the
                        # protocols in this repo never rely on them.
                        continue
                    continue
                ctx = RoundContext(
                    node=node,
                    neighbors=self.network.neighbors(node),
                    round_number=round_number,
                    inbox=tuple(inboxes[node]),
                )
                self.programs[node].on_round(ctx)
                for message in ctx.outbox:
                    if not self.network.has_edge(message.sender, message.receiver):
                        raise NetworkError(
                            f"{message.sender!r} tried to message non-neighbor "
                            f"{message.receiver!r}"
                        )
                    self.bandwidth.check(message)
                    pending[message.receiver].append(message)
                    round_messages += 1
                    bits = message.size_bits
                    round_bits += bits
                    if bits > round_max_bits:
                        round_max_bits = bits
                    if self.observer is not None:
                        sent_this_round.append(message)
                if ctx.halted:
                    halted[node] = True
                    halted_this_round.append(node)

            self.ledger.charge_round(
                messages=round_messages,
                bits=round_bits,
                max_message_bits=round_max_bits,
            )
            if self.observer is not None:
                self.observer.on_round(
                    round_number, sent_this_round, halted_this_round
                )
            if self.stop_when is not None and self.stop_when(self.programs):
                break
        self.rounds_executed = round_number
        return self.ledger

    def outputs(self) -> Dict[Node, object]:
        """Collect every node's declared output."""
        return {node: program.output() for node, program in self.programs.items()}


def run_protocol(network: Network,
                 programs: Mapping[Node, NodeProgram],
                 bandwidth: Optional[BandwidthModel] = None,
                 ledger: Optional[CostLedger] = None,
                 max_rounds: int = DEFAULT_MAX_ROUNDS,
                 stop_when=None
                 ) -> Tuple[Dict[Node, object], CostLedger]:
    """Convenience wrapper: run to quiescence and return (outputs, ledger)."""
    scheduler = Scheduler(
        network, programs, bandwidth=bandwidth, ledger=ledger,
        stop_when=stop_when,
    )
    scheduler.run(max_rounds=max_rounds)
    return scheduler.outputs(), scheduler.ledger
