"""The synchronous round scheduler.

Runs one :class:`~repro.sim.node.NodeProgram` per node in lock step:

1. every active node is called with the messages delivered this round,
2. the messages it queues are validated against the bandwidth model and
   buffered,
3. buffered messages are delivered at the start of the next round.

This matches the paper's model: in every round a node can send a
(potentially different) message to each neighbor, receive the neighbors'
messages, and perform arbitrary internal computation.

The scheduler terminates when every node has halted and no messages are in
flight, and charges the measured rounds/messages/bits to a
:class:`~repro.sim.metrics.CostLedger` so that composed protocols share one
meter.

Three execution engines implement the same semantics:

``fast`` (the default)
    The production hot loop.  It compiles the topology once
    (:meth:`~repro.sim.network.Network.compile`), keeps an explicit
    active list instead of scanning every node each round, reuses a pair
    of per-node inbox buffers instead of rebuilding ``{node: []}`` dicts,
    fans each :class:`~repro.sim.message.Broadcast` envelope out *by
    reference* over the compiled CSR row (charging the ledger and the
    CONGEST checker analytically as ``copies * size``), skips
    per-message bandwidth calls entirely under
    :class:`~repro.sim.congest.LocalModel`, and batches ledger
    accumulation into one charge per run when no observer or stop oracle
    needs per-round granularity.

``vectorized``
    The batched-dispatch path for *homogeneous* populations.  When every
    program is exactly the same class and that class has a registered
    :class:`~repro.sim.kernels.RoundKernel`, the whole population is
    executed array-at-a-time over the compiled CSR rows -- one kernel
    ``step`` per round instead of one ``on_round`` call per node -- with
    the ledger charged in bulk.  Mixed or unregistered populations (and
    runs that need per-round observer/oracle granularity) transparently
    fall back to the fast engine, so ``engine="vectorized"`` is always
    safe to request.

``sharded``
    The multi-core path for *large single-graph* runs.  The compiled
    CSR is partitioned into contiguous node shards
    (:mod:`repro.graphs.partition`), each shard's kernel columns run in
    a pinned worker process, and workers synchronize once per round by
    exchanging only boundary ("halo") state through a shared-memory
    segment (:mod:`repro.sim.sharded`).  Populations the sharded
    registry does not cover fall through to the vectorized engine, and
    small or non-CSR-direct runs execute their shards serially
    in-process -- in every case byte-identical to serial execution.

``reference``
    The direct transcription of the model definition that the repository
    started from.  It is kept as the executable specification: the
    equivalence suite (``tests/sim/test_engine_equivalence.py``) runs
    representative protocols through all engines and asserts identical
    outputs, rounds, messages, and bit totals, and
    ``benchmarks/bench_engine.py`` tracks the fast and vectorized paths'
    speedups over it.

Select an engine per call (``scheduler.run(engine="reference")``), per
process (the ``REPRO_SIM_ENGINE`` environment variable), or temporarily
for a whole protocol stack (:func:`use_engine`).

All three engines share one telemetry hook: when a
:class:`~repro.obs.tracer.Tracer` is installed
(:func:`repro.obs.use_tracer`), every ``run`` emits an aggregate span +
round-batch event built from the ledger delta -- never per-round or
per-node records -- so tracing costs one extra ``None`` check per run
when disabled and does not change engine eligibility when enabled (a
traced vectorized run keeps its kernels; contrast the per-round
``observer``, which forces the fast path).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs.tracer import current_tracer
from .congest import BandwidthModel, LocalModel
from .errors import NetworkError, RoundLimitExceeded, SchedulerError
from .message import Broadcast, Message
from .metrics import CostLedger, ensure_ledger
from .network import Network
from .node import NodeProgram, RoundContext

Node = Hashable

#: Safety net so buggy protocols fail loudly instead of spinning forever.
DEFAULT_MAX_ROUNDS = 1_000_000

#: The engines understood by :meth:`Scheduler.run`.
ENGINES = ("fast", "reference", "vectorized", "sharded")

#: Environment variable naming the process-default engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"

#: A programmatic engine selection (``set_default_engine`` /
#: :func:`use_engine`); ``None`` means "defer to the environment".  Kept
#: separate from the environment read so that ``REPRO_SIM_ENGINE`` is
#: honored *dynamically* -- setting it after import (or after a process
#: pool's parent imported this module) still takes effect, which the
#: parallel trial runner relies on to resolve the engine once in the
#: parent and ship it to every worker.
_engine_override: Optional[str] = None


def _validate_engine(name: str) -> str:
    if name not in ENGINES:
        raise SchedulerError(
            f"unknown scheduler engine {name!r}; expected one of {ENGINES}"
        )
    return name


def default_engine() -> str:
    """The engine used when :meth:`Scheduler.run` gets ``engine=None``.

    A programmatic selection wins; otherwise the *current* value of
    ``REPRO_SIM_ENGINE`` (re-read on every call, so late environment
    changes are honored), falling back to ``"fast"``.
    """
    if _engine_override is not None:
        return _engine_override
    return os.environ.get(ENGINE_ENV, "fast")


def set_default_engine(name: str) -> str:
    """Set the process-wide default engine; returns the previous one."""
    global _engine_override
    previous = default_engine()
    _engine_override = _validate_engine(name)
    return previous


@contextmanager
def use_engine(name: str) -> Iterator[None]:
    """Temporarily force every scheduler run to use ``name``.

    Lets benchmarks and equivalence tests push a whole protocol stack --
    including nested :func:`run_protocol` calls deep inside compositions
    -- onto one engine without threading a parameter everywhere.  On exit
    the previous override state is restored exactly (including the
    "no override, defer to the environment" state).
    """
    global _engine_override
    saved = _engine_override
    set_default_engine(name)
    try:
        yield
    finally:
        _engine_override = saved


class Scheduler:
    """Drives a set of node programs over a network until all halt."""

    def __init__(self, network: Network,
                 programs: Mapping[Node, NodeProgram],
                 bandwidth: Optional[BandwidthModel] = None,
                 ledger: Optional[CostLedger] = None,
                 observer=None,
                 stop_when=None):
        missing = set(network.nodes) - set(programs)
        if missing:
            raise SchedulerError(f"nodes without a program: {sorted(map(repr, missing))}")
        extra = set(programs) - set(network.nodes)
        if extra:
            raise SchedulerError(f"programs for unknown nodes: {sorted(map(repr, extra))}")
        self.network = network
        self.programs = dict(programs)
        self.bandwidth = bandwidth if bandwidth is not None else LocalModel()
        self.ledger = ensure_ledger(ledger)
        #: Optional RoundObserver receiving per-round event records.
        self.observer = observer
        #: Optional global-quiescence oracle: ``stop_when(programs)`` is
        #: evaluated after every round and ends the run when true.  This
        #: models an external termination detector -- protocols whose
        #: nodes cannot decide termination locally (e.g. parallel local
        #: search) use it instead of per-node halting.
        self.stop_when = stop_when
        self.rounds_executed = 0

    def run(self, max_rounds: int = DEFAULT_MAX_ROUNDS,
            engine: Optional[str] = None) -> CostLedger:
        """Run to quiescence; returns the ledger for convenience.

        ``engine`` selects the execution path (``"fast"``,
        ``"reference"``, or ``"vectorized"``); ``None`` uses the process
        default (normally ``"fast"``, overridable via
        ``REPRO_SIM_ENGINE`` or :func:`use_engine`).  All engines
        implement identical semantics; ``"vectorized"`` falls back to
        ``"fast"`` for populations it cannot batch.
        """
        name = _validate_engine(engine if engine is not None
                                else default_engine())
        tracer = current_tracer()
        # Per-run registry metrics from the ledger delta: recorded for
        # every run, traced or not.  Write-only observation -- nothing
        # below reads the registry, so results cannot change.
        ledger = self.ledger
        before = (ledger.rounds, ledger.messages, ledger.bits,
                  ledger.broadcasts)
        started = time.perf_counter()
        try:
            if tracer is None:
                return self._dispatch(name, max_rounds)
            return self._run_traced(tracer, name, max_rounds)
        finally:
            obs_metrics.record_run(
                name,
                ledger.rounds - before[0],
                ledger.messages - before[1],
                ledger.bits - before[2],
                ledger.broadcasts - before[3],
                time.perf_counter() - started,
            )

    def _dispatch(self, name: str, max_rounds: int) -> CostLedger:
        if name == "reference":
            return self._run_reference(max_rounds)
        if name == "vectorized":
            return self._run_vectorized(max_rounds)
        if name == "sharded":
            return self._run_sharded(max_rounds)
        return self._run_fast(max_rounds)

    def _run_traced(self, tracer, name: str,
                    max_rounds: int) -> CostLedger:
        """Run under the installed :class:`~repro.obs.tracer.Tracer`.

        Tracing is *aggregate*, not per-round: the run's ledger delta is
        computed around the engine dispatch and emitted as one ``run``
        span plus one ``round-batch`` event, so the hot loops are
        untouched and -- unlike attaching a
        :class:`~repro.sim.tracing.RoundObserver` -- the vectorized
        engine keeps its kernels.  The logical fields of the emitted
        records are engine-invariant (the ledger delta is covered by the
        engine-equivalence contract); ``engine`` / ``kernel`` /
        ``fallback`` / wall-clock ride along as physical fields, with
        kernel attribution recovered from the process
        :class:`~repro.sim.kernels.KernelStats` delta.
        """
        from .kernels import kernel_stats

        ledger = self.ledger
        before = (ledger.rounds, ledger.messages, ledger.bits,
                  ledger.broadcasts)
        kernelized = name in ("vectorized", "sharded")
        kstats_before = kernel_stats() if kernelized else None
        sstats_before = None
        if name == "sharded":
            from .sharded import shard_stats

            sstats_before = shard_stats()
        with tracer.span("run", "scheduler",
                         nodes=len(self.programs)) as span:
            try:
                return self._dispatch(name, max_rounds)
            finally:
                kernel = fallback = backend = None
                warmup_s = 0.0
                if kstats_before is not None:
                    kstats = kernel_stats()
                    warmup_s = kstats["warmup_s"] - kstats_before["warmup_s"]
                    for key, count in kstats["by_kernel"].items():
                        if count > kstats_before["by_kernel"].get(key, 0):
                            kernel = key
                            break
                    for key, count in kstats["by_reason"].items():
                        if count > kstats_before["by_reason"].get(key, 0):
                            fallback = key
                            break
                    for key, count in kstats["by_backend"].items():
                        if count > kstats_before["by_backend"].get(key, 0):
                            backend = key.rsplit("[", 1)[-1].rstrip("]")
                            break
                    tracer.annotate(
                        "dispatch", kernel=kernel, fallback=fallback,
                        backend=backend, warmup_s=warmup_s,
                    )
                shards = halo_bytes = barrier_wait_s = None
                if sstats_before is not None:
                    from .sharded import shard_stats

                    sstats = shard_stats()
                    last = sstats["last_run"]
                    if (sstats["engaged"] > sstats_before["engaged"]
                            and last is not None):
                        shards = last["shards"]
                        halo_bytes = last["halo_bytes"]
                        barrier_wait_s = last["barrier_wait_s"]
                        # Physical records (kind="kernel" is in
                        # PHYSICAL_KINDS): per-shard stats never enter
                        # the logical byte-identity contract.
                        for entry in last["per_shard"]:
                            tracer.annotate(
                                "shard",
                                shard=entry["shard"],
                                shards=shards,
                                halo_bytes=(entry["halo_in_bytes"]
                                            + entry["halo_out_bytes"]),
                                barrier_wait_s=entry["barrier_wait_s"],
                            )
                from ..obs.manifest import peak_rss_kb

                if shards is not None:
                    span.attrs.update(
                        shards=shards,
                        halo_bytes=halo_bytes,
                        barrier_wait_s=barrier_wait_s,
                    )
                span.attrs.update(
                    rounds=ledger.rounds - before[0],
                    messages=ledger.messages - before[1],
                    bits=ledger.bits - before[2],
                    broadcasts=ledger.broadcasts - before[3],
                    engine=name,
                    kernel=kernel,
                    fallback=fallback,
                    backend=backend,
                    # Physical field (PHYSICAL_FIELDS): peak RSS so far,
                    # outside the logical byte-identity contract.
                    rss_kb=peak_rss_kb(),
                )
                tracer.event(
                    "round-batch", "rounds",
                    rounds=ledger.rounds - before[0],
                    messages=ledger.messages - before[1],
                    bits=ledger.bits - before[2],
                    max_message_bits=ledger.max_message_bits,
                    broadcasts=ledger.broadcasts - before[3],
                    engine=name,
                    kernel=kernel,
                )

    # ------------------------------------------------------------------
    # Fast engine
    # ------------------------------------------------------------------
    def _run_fast(self, max_rounds: int) -> CostLedger:
        compiled = self.network.compile()
        n = compiled.n
        order = compiled.order
        index = compiled.index
        neighbor_objects = compiled.neighbor_objects
        neighbor_sets = compiled.neighbor_sets
        neighbor_id_tuples = compiled.neighbor_id_tuples
        degrees = compiled.degrees
        programs = [self.programs[node] for node in order]
        on_rounds = [program.on_round for program in programs]
        has_edge = self.network.has_edge

        observer = self.observer
        stop_when = self.stop_when
        ledger = self.ledger
        # LocalModel accepts everything; skip the per-message call.
        bandwidth = self.bandwidth
        local = type(bandwidth) is LocalModel
        check = None if local else bandwidth.check
        check_fanout = None if local else bandwidth.check_fanout

        # Double-buffered per-node inboxes, allocated once.  ``touched``
        # lists the ids whose buffer is non-empty so end-of-round cleanup
        # is O(deliveries), not O(n).  Duplicate ids are allowed (the
        # broadcast fan-out bulk-extends them); clearing twice is free.
        inboxes: List[List[Message]] = [[] for _ in range(n)]
        pending: List[List[Message]] = [[] for _ in range(n)]
        inbox_touched: List[int] = []
        pending_touched: List[int] = []
        pending_count = 0

        # Per-node tuples of the neighbors' bound ``list.append`` methods,
        # one per buffer: a broadcast appends straight into its receivers'
        # boxes with no per-copy indexing, emptiness test, or attribute
        # lookup.
        inbox_boxes = tuple(
            tuple(inboxes[j].append for j in neighbor_id_tuples[i])
            for i in range(n)
        )
        pending_boxes = tuple(
            tuple(pending[j].append for j in neighbor_id_tuples[i])
            for i in range(n)
        )

        # Dense ids of non-halted nodes, kept in network order so message
        # buffers fill in the same order as the reference engine.
        active: List[int] = list(range(n))

        # With no per-round consumers, whole-run totals are charged in one
        # batch; otherwise the ledger advances round by round (an observer
        # or oracle may read it between rounds).
        batch = observer is None and stop_when is None
        batch_rounds = 0
        batch_messages = 0
        batch_bits = 0
        batch_max_bits = 0
        batch_broadcasts = 0

        # One context object serves every on_round call: a RoundContext
        # is only valid for the duration of the call it is passed to (see
        # its docstring), so the fast engine recycles a single instance
        # instead of allocating n of them per round.
        ctx = RoundContext(None, (), 0, ())
        ctx_outbox = ctx.outbox

        round_number = 0
        try:
            while active or pending_count:
                if round_number >= max_rounds:
                    raise RoundLimitExceeded(max_rounds, len(active))
                round_number += 1

                # Last round's sends become this round's inboxes; the
                # drained buffers are reused for this round's sends.
                inboxes, pending = pending, inboxes
                inbox_boxes, pending_boxes = pending_boxes, inbox_boxes
                inbox_touched, pending_touched = pending_touched, inbox_touched
                pending_count = 0

                round_messages = 0
                round_bits = 0
                round_max_bits = 0
                round_broadcasts = 0
                # Observer feed: ``(envelope, copies)`` pairs, expanded
                # lazily by the observer instead of materializing one
                # list entry per delivered broadcast copy.
                sent_this_round: Optional[List[Tuple[Message, int]]] = (
                    [] if observer is not None else None
                )
                halted_this_round: List[Node] = []
                next_active: List[int] = []

                # Rebound once per round: these lists are either fresh or
                # were just swapped, and attribute lookups inside the node
                # loop are measurable at this scale.
                touched_extend = pending_touched.extend
                touched_append = pending_touched.append
                halted_append = halted_this_round.append
                next_active_append = next_active.append

                ctx.round_number = round_number
                for i in active:
                    node = order[i]
                    ctx.node = node
                    ctx.neighbors = neighbor_objects[i]
                    # The live buffer is handed over uncopied: it is not
                    # mutated until end-of-round cleanup, and the context
                    # contract forbids keeping it past the call.
                    ctx.inbox = inboxes[i]
                    ctx.halted = False
                    on_rounds[i](ctx)
                    if not ctx_outbox:
                        if ctx.halted:
                            halted_append(node)
                        else:
                            next_active_append(i)
                        continue
                    for message in ctx_outbox:
                        if message.__class__ is Broadcast:
                            # One shared envelope fans out by reference
                            # over the CSR row; accounting is analytic
                            # (count * size), bit-identical to charging
                            # each copy as the reference engine does.
                            if message.sender is not node \
                                    and message.sender != node:
                                raise NetworkError(
                                    f"{message.sender!r} queued a broadcast "
                                    f"from {node!r}'s outbox"
                                )
                            round_broadcasts += 1
                            copies = degrees[i]
                            if not copies:
                                continue
                            if check_fanout is not None:
                                check_fanout(message, copies)
                            for deliver in pending_boxes[i]:
                                deliver(message)
                            touched_extend(neighbor_id_tuples[i])
                            round_messages += copies
                            bits = message._size_cache
                            if bits is None:
                                bits = message.size_bits
                            round_bits += copies * bits
                            if bits > round_max_bits:
                                round_max_bits = bits
                            if sent_this_round is not None:
                                sent_this_round.append((message, copies))
                            continue
                        # ctx.send stamps the node itself as sender; only
                        # hand-built envelopes take the general check.
                        if not (message.sender is node
                                and message.receiver in neighbor_sets[i]) \
                                and not has_edge(message.sender,
                                                 message.receiver):
                            raise NetworkError(
                                f"{message.sender!r} tried to message "
                                f"non-neighbor {message.receiver!r}"
                            )
                        if check is not None:
                            check(message)
                        receiver_id = index[message.receiver]
                        box = pending[receiver_id]
                        if not box:
                            touched_append(receiver_id)
                        box.append(message)
                        round_messages += 1
                        bits = message.size_bits
                        round_bits += bits
                        if bits > round_max_bits:
                            round_max_bits = bits
                        if sent_this_round is not None:
                            sent_this_round.append((message, 1))
                    ctx_outbox.clear()
                    if ctx.halted:
                        halted_append(node)
                    else:
                        next_active_append(i)
                active = next_active
                # Every send this round landed in a pending buffer, so the
                # in-flight count *is* the round's message count.
                pending_count = round_messages

                # Drop consumed inboxes (including late messages to nodes
                # that halted; as in the reference engine they are counted,
                # trigger one more round, and are never delivered).
                # Broadcast fan-out records one touched id per copy, so in
                # dense rounds the touched list (duplicates included) can
                # exceed n -- then sweeping every buffer is cheaper.
                if len(inbox_touched) > n:
                    for box in inboxes:
                        box.clear()
                else:
                    for i in inbox_touched:
                        inboxes[i].clear()
                del inbox_touched[:]

                if batch:
                    batch_rounds += 1
                    batch_messages += round_messages
                    batch_bits += round_bits
                    batch_broadcasts += round_broadcasts
                    if round_max_bits > batch_max_bits:
                        batch_max_bits = round_max_bits
                else:
                    ledger.charge_round(
                        messages=round_messages,
                        bits=round_bits,
                        max_message_bits=round_max_bits,
                        broadcasts=round_broadcasts,
                    )
                    if observer is not None:
                        observer.on_round(
                            round_number, sent_this_round, halted_this_round
                        )
                    if stop_when is not None and stop_when(self.programs):
                        break
        finally:
            # Completed rounds are charged even when a program or check
            # raises mid-run, exactly as the reference engine does.
            if batch_rounds:
                ledger.charge_batch(
                    batch_rounds,
                    messages=batch_messages,
                    bits=batch_bits,
                    max_message_bits=batch_max_bits,
                    broadcasts=batch_broadcasts,
                )
        self.rounds_executed = round_number
        return ledger

    # ------------------------------------------------------------------
    # Vectorized engine
    # ------------------------------------------------------------------
    def _run_vectorized(self, max_rounds: int) -> CostLedger:
        """Batched array-at-a-time execution for homogeneous populations.

        Eligibility is checked here, once per run: a uniform program
        class with a registered :class:`~repro.sim.kernels.RoundKernel`
        whose ``prepare`` accepts the population.  Everything else --
        mixed classes, unregistered programs, kernels that decline,
        observers and stop oracles (which need per-node, per-round
        granularity) -- falls back to :meth:`_run_fast`, which handles
        any population with identical semantics.
        """
        # Local imports: avoid an import cycle with the kernel layer.
        from .kernels import _record_fallback, _record_hit, kernel_for

        if self.observer is not None or self.stop_when is not None:
            _record_fallback(
                "observer" if self.observer is not None else "stop_when"
            )
            return self._run_fast(max_rounds)
        programs_map = self.programs
        if not programs_map:
            _record_fallback("empty")
            return self._run_fast(max_rounds)
        iterator = iter(programs_map.values())
        cls = next(iterator).__class__
        for program in iterator:
            if program.__class__ is not cls:
                _record_fallback("mixed")
                return self._run_fast(max_rounds)
        factory = kernel_for(cls)
        if factory is None:
            _record_fallback("unregistered")
            return self._run_fast(max_rounds)

        compiled = self.network.compile()
        programs = [programs_map[node] for node in compiled.order]
        kernel = factory()
        warmup_start = time.perf_counter()
        columns = kernel.prepare(compiled, programs, self.bandwidth)
        warmup_s = time.perf_counter() - warmup_start
        if columns is None:
            _record_fallback("declined", warmup_s)
            return self._run_fast(max_rounds)
        _record_hit(type(kernel).__name__, warmup_s,
                    getattr(kernel, "backend", "python"))

        ledger = self.ledger
        step = kernel.step
        rounds = 0
        messages = 0
        bits = 0
        max_bits = 0
        broadcasts = 0
        inboxes = None
        active = len(programs)
        round_number = 0
        try:
            while True:
                if round_number >= max_rounds:
                    raise RoundLimitExceeded(max_rounds, active)
                round_number += 1
                result = step(round_number, columns, inboxes)
                rounds += 1
                messages += result.messages
                bits += result.bits
                broadcasts += result.broadcasts
                if result.max_message_bits > max_bits:
                    max_bits = result.max_message_bits
                active = result.active
                inboxes = result.outboxes
                if not active and not result.messages:
                    break
        finally:
            # Completed rounds are charged even when a kernel step
            # raises mid-run, exactly as the per-node engines do (a
            # raising step leaves its own round uncharged).
            if rounds:
                ledger.charge_batch(
                    rounds,
                    messages=messages,
                    bits=bits,
                    max_message_bits=max_bits,
                    broadcasts=broadcasts,
                )
        kernel.finalize(columns, programs)
        self.rounds_executed = round_number
        return ledger

    # ------------------------------------------------------------------
    # Sharded engine
    # ------------------------------------------------------------------
    def _run_sharded(self, max_rounds: int) -> CostLedger:
        """Partitioned multi-worker execution of one run.

        Eligible homogeneous populations (see
        :func:`repro.sim.sharded.register_sharded`) execute shard-wise
        -- in parallel worker processes with per-round halo exchange on
        large CSR-direct topologies, serially in-process otherwise --
        byte-identical to the serial engines.  Everything else falls
        through to :meth:`_run_vectorized` and its fallback chain, so
        ``engine="sharded"`` is always safe to request.
        """
        # Local import: the sharded module imports kernel-layer helpers.
        from .sharded import run_sharded

        return run_sharded(self, max_rounds)

    # ------------------------------------------------------------------
    # Reference engine
    # ------------------------------------------------------------------
    def _run_reference(self, max_rounds: int) -> CostLedger:
        """The seed scheduler loop, kept as the executable specification."""
        halted: Dict[Node, bool] = {node: False for node in self.network}
        pending: Dict[Node, List[Message]] = {node: [] for node in self.network}
        in_flight = 0
        round_number = 0
        while True:
            active = [node for node in self.network if not halted[node]]
            if not active and not in_flight:
                break
            if round_number >= max_rounds:
                raise RoundLimitExceeded(max_rounds, len(active))
            round_number += 1

            inboxes = pending
            pending = {node: [] for node in self.network}
            in_flight = 0
            round_messages = 0
            round_bits = 0
            round_max_bits = 0
            round_broadcasts = 0
            sent_this_round: List[Message] = []
            halted_this_round: List[Node] = []

            for node in self.network:
                if halted[node]:
                    # Late messages to a halted node are dropped; the
                    # protocols in this repo never rely on them.
                    continue
                ctx = RoundContext(
                    node=node,
                    neighbors=self.network.neighbors(node),
                    round_number=round_number,
                    inbox=tuple(inboxes[node]),
                )
                self.programs[node].on_round(ctx)
                for message in ctx.outbox:
                    if message.__class__ is Broadcast:
                        # The model definition of a broadcast: the same
                        # envelope is sent to each neighbor in neighbor
                        # order, each copy checked and charged like an
                        # individual point-to-point message.
                        if message.sender is not node \
                                and message.sender != node:
                            raise NetworkError(
                                f"{message.sender!r} queued a broadcast "
                                f"from {node!r}'s outbox"
                            )
                        round_broadcasts += 1
                        for neighbor in self.network.neighbors(node):
                            self.bandwidth.check(message)
                            pending[neighbor].append(message)
                            in_flight += 1
                            round_messages += 1
                            bits = message.size_bits
                            round_bits += bits
                            if bits > round_max_bits:
                                round_max_bits = bits
                            if self.observer is not None:
                                sent_this_round.append(message)
                        continue
                    if not self.network.has_edge(message.sender, message.receiver):
                        raise NetworkError(
                            f"{message.sender!r} tried to message non-neighbor "
                            f"{message.receiver!r}"
                        )
                    self.bandwidth.check(message)
                    pending[message.receiver].append(message)
                    in_flight += 1
                    round_messages += 1
                    bits = message.size_bits
                    round_bits += bits
                    if bits > round_max_bits:
                        round_max_bits = bits
                    if self.observer is not None:
                        sent_this_round.append(message)
                if ctx.halted:
                    halted[node] = True
                    halted_this_round.append(node)

            self.ledger.charge_round(
                messages=round_messages,
                bits=round_bits,
                max_message_bits=round_max_bits,
                broadcasts=round_broadcasts,
            )
            if self.observer is not None:
                self.observer.on_round(
                    round_number, sent_this_round, halted_this_round
                )
            if self.stop_when is not None and self.stop_when(self.programs):
                break
        self.rounds_executed = round_number
        return self.ledger

    def outputs(self) -> Dict[Node, object]:
        """Collect every node's declared output."""
        return {node: program.output() for node, program in self.programs.items()}


def run_protocol(network: Network,
                 programs: Mapping[Node, NodeProgram],
                 bandwidth: Optional[BandwidthModel] = None,
                 ledger: Optional[CostLedger] = None,
                 max_rounds: int = DEFAULT_MAX_ROUNDS,
                 stop_when=None,
                 engine: Optional[str] = None
                 ) -> Tuple[Dict[Node, object], CostLedger]:
    """Convenience wrapper: run to quiescence and return (outputs, ledger)."""
    scheduler = Scheduler(
        network, programs, bandwidth=bandwidth, ledger=ledger,
        stop_when=stop_when,
    )
    scheduler.run(max_rounds=max_rounds, engine=engine)
    return scheduler.outputs(), scheduler.ledger
