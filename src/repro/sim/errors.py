"""Exception hierarchy for the distributed round simulator.

All simulator and algorithm errors derive from :class:`SimulationError` so
callers can catch one base class.  Algorithm-level failures are split into
precondition violations (the caller handed an instance that does not satisfy
the theorem's hypothesis) and runtime failures (an invariant the paper proves
did not hold, which indicates a bug and should never happen on feasible
instances).
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class NetworkError(SimulationError):
    """Raised for malformed topologies or invalid node references."""


class SchedulerError(SimulationError):
    """Raised when the round scheduler is used incorrectly."""


class RoundLimitExceeded(SchedulerError):
    """Raised when a protocol does not terminate within its round budget."""

    def __init__(self, limit: int, still_active: int):
        self.limit = limit
        self.still_active = still_active
        super().__init__(
            f"protocol did not terminate within {limit} rounds "
            f"({still_active} nodes still active)"
        )

    def __reduce__(self):
        # Default Exception pickling replays ``args`` (the formatted
        # message) into ``__init__``; replay the real constructor args so
        # the exception survives a pool worker -> parent round trip.
        return (type(self), (self.limit, self.still_active))


class BandwidthExceeded(SimulationError):
    """Raised in CONGEST mode when a message exceeds the per-edge budget."""

    def __init__(self, bits: int, budget: int, sender, receiver):
        self.bits = bits
        self.budget = budget
        self.sender = sender
        self.receiver = receiver
        # Broadcast envelopes have no single receiver (receiver is None).
        target = "all neighbors" if receiver is None else repr(receiver)
        super().__init__(
            f"CONGEST violation: message of {bits} bits from {sender!r} to "
            f"{target} exceeds the {budget}-bit per-edge round budget"
        )

    def __reduce__(self):
        # See RoundLimitExceeded.__reduce__: picklable across pools.
        return (type(self), (self.bits, self.budget, self.sender,
                             self.receiver))


class InstanceError(SimulationError):
    """Raised for structurally malformed coloring instances."""


class InfeasibleInstanceError(SimulationError):
    """Raised when an instance violates an algorithm's slack precondition.

    The offending node and the failed inequality are recorded so tests can
    assert on the precise precondition that failed.
    """

    def __init__(self, node, message: str):
        self.node = node
        self.message = message
        super().__init__(f"node {node!r}: {message}")

    def __reduce__(self):
        return (type(self), (self.node, self.message))


class AlgorithmFailure(SimulationError):
    """Raised when a proven invariant fails at run time.

    On instances satisfying the paper's preconditions this is unreachable;
    seeing it means the implementation (not the input) is wrong.
    """
