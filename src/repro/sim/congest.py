"""Bandwidth models: LOCAL (unbounded) and CONGEST (O(log n) bits).

The scheduler consults a :class:`BandwidthModel` for every message.  The
CONGEST budget follows the standard convention of ``c * log2(n)`` bits per
edge per round; protocols that additionally ship colors from a space of
size ``C`` may widen the budget to ``c * (log2 n + log2 C)`` -- exactly the
message size Theorem 1.2 claims -- by passing ``extra_bits``.
"""

from __future__ import annotations

import math
from typing import Optional

from .errors import BandwidthExceeded
from .message import Message


class BandwidthModel:
    """Interface: validate each message against the model's budget."""

    name = "abstract"

    def check(self, message: Message) -> None:
        """Raise :class:`BandwidthExceeded` if the message is too large."""
        raise NotImplementedError

    def check_fanout(self, envelope, copies: int) -> None:
        """Validate a broadcast envelope fanned out ``copies`` times.

        Every copy of a broadcast is bit-identical, so one budget check
        stands for all of them: this is exactly equivalent to calling
        :meth:`check` once per copy (as the reference engine does), but
        O(1) instead of O(degree).  ``copies == 0`` sends nothing and
        therefore checks nothing.
        """
        if copies > 0:
            self.check(envelope)

    def budget_bits(self) -> Optional[int]:
        """The per-edge per-round budget, or ``None`` if unbounded."""
        raise NotImplementedError


class LocalModel(BandwidthModel):
    """The LOCAL model: messages of arbitrary size."""

    name = "LOCAL"

    def check(self, message: Message) -> None:
        return None

    def budget_bits(self) -> Optional[int]:
        return None


class CongestModel(BandwidthModel):
    """The CONGEST model with budget ``factor * (log2 n + extra_bits)``."""

    name = "CONGEST"

    def __init__(self, n: int, factor: int = 32, extra_bits: int = 0):
        if n < 1:
            raise ValueError("n must be positive")
        if factor < 1:
            raise ValueError("factor must be positive")
        self.n = n
        self.factor = factor
        self.extra_bits = extra_bits
        log_n = max(1, int(math.ceil(math.log2(max(2, n)))))
        self._budget = factor * (log_n + extra_bits)

    def check(self, message: Message) -> None:
        bits = message.size_bits
        if bits > self._budget:
            raise BandwidthExceeded(
                bits, self._budget, message.sender, message.receiver
            )

    def budget_bits(self) -> Optional[int]:
        return self._budget
