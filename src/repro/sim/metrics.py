"""Cost accounting shared across composed protocols.

The theorems in the paper bound three resources: the number of synchronous
*rounds*, the number of *messages*, and the maximum *message size* in bits
(the CONGEST budget).  A :class:`CostLedger` accumulates all three and can
be passed through a chain of sub-protocol invocations (e.g. Theorem 1.5
calls Lemma 4.4, which calls Lemma 3.4, which runs Linial steps) so the
composed totals are measured exactly once.

Phases give a named breakdown: ``ledger.phase("linial")`` opens a scope and
rounds charged inside it are attributed to that phase as well as the total.
When a :class:`~repro.obs.tracer.Tracer` is installed the same ``with
ledger.phase(...)`` block *also* opens a trace span, so one scope both
charges the logical costs and times the physical wall-clock -- the
per-phase profile in ``repro trace`` comes straight from these spans.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..obs.tracer import current_tracer


@dataclass
class PhaseStats:
    """Per-phase resource totals."""

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    max_message_bits: int = 0
    invocations: int = 0
    #: Broadcast envelopes fanned out (each already counted in
    #: ``messages`` once per delivered copy).
    broadcasts: int = 0


class CostLedger:
    """Accumulates rounds / messages / bits across composed protocols."""

    def __init__(self) -> None:
        self.rounds = 0
        self.messages = 0
        self.bits = 0
        self.max_message_bits = 0
        #: Broadcast envelopes fanned out; the delivered copies are part
        #: of ``messages``/``bits``, so this tracks *how* traffic was
        #: produced, not extra traffic.
        self.broadcasts = 0
        self.phases: Dict[str, PhaseStats] = {}
        self._phase_stack: List[str] = []

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge_round(self, messages: int = 0, bits: int = 0,
                     max_message_bits: int = 0, broadcasts: int = 0) -> None:
        """Record one synchronous round with the given message totals."""
        self.rounds += 1
        self.messages += messages
        self.bits += bits
        self.broadcasts += broadcasts
        if max_message_bits > self.max_message_bits:
            self.max_message_bits = max_message_bits
        for name in self._phase_stack:
            stats = self.phases[name]
            stats.rounds += 1
            stats.messages += messages
            stats.bits += bits
            stats.broadcasts += broadcasts
            if max_message_bits > stats.max_message_bits:
                stats.max_message_bits = max_message_bits

    def charge_batch(self, rounds: int, messages: int = 0, bits: int = 0,
                     max_message_bits: int = 0, broadcasts: int = 0) -> None:
        """Record ``rounds`` synchronous rounds in one update.

        Equivalent to ``rounds`` calls of :meth:`charge_round` whose
        message/bit counts sum to the given totals -- the fast scheduler
        engine accumulates whole runs locally and charges them here in
        one O(phases) step instead of O(rounds * phases).
        """
        if rounds < 0:
            raise ValueError("cannot charge a negative number of rounds")
        if rounds == 0:
            return
        self.rounds += rounds
        self.messages += messages
        self.bits += bits
        self.broadcasts += broadcasts
        if max_message_bits > self.max_message_bits:
            self.max_message_bits = max_message_bits
        for name in self._phase_stack:
            stats = self.phases[name]
            stats.rounds += rounds
            stats.messages += messages
            stats.bits += bits
            stats.broadcasts += broadcasts
            if max_message_bits > stats.max_message_bits:
                stats.max_message_bits = max_message_bits

    def charge_rounds(self, count: int) -> None:
        """Charge ``count`` silent rounds (no messages)."""
        self.charge_batch(count)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Attribute rounds charged inside the ``with`` block to ``name``.

        With a tracer installed (:func:`repro.obs.use_tracer`) the scope
        additionally emits a ``phase`` span carrying this invocation's
        charge delta and wall-clock, so charging and timing share one
        ``with`` statement.
        """
        stats = self.phases.setdefault(name, PhaseStats())
        stats.invocations += 1
        self._phase_stack.append(name)
        tracer = current_tracer()
        if tracer is None:
            try:
                yield stats
            finally:
                self._phase_stack.pop()
            return
        before = (stats.rounds, stats.messages, stats.bits,
                  stats.broadcasts)
        with tracer.span("phase", name) as span:
            try:
                yield stats
            finally:
                self._phase_stack.pop()
                span.attrs.update(
                    rounds=stats.rounds - before[0],
                    messages=stats.messages - before[1],
                    bits=stats.bits - before[2],
                    broadcasts=stats.broadcasts - before[3],
                )

    def phase_rounds(self, name: str) -> int:
        """Rounds attributed to phase ``name`` (0 if never entered)."""
        stats = self.phases.get(name)
        return stats.rounds if stats is not None else 0

    # ------------------------------------------------------------------
    # Merging and reporting
    # ------------------------------------------------------------------
    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's totals into this one (phases included)."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.bits += other.bits
        self.broadcasts += other.broadcasts
        if other.max_message_bits > self.max_message_bits:
            self.max_message_bits = other.max_message_bits
        for name, stats in other.phases.items():
            mine = self.phases.setdefault(name, PhaseStats())
            mine.rounds += stats.rounds
            mine.messages += stats.messages
            mine.bits += stats.bits
            mine.broadcasts += stats.broadcasts
            mine.invocations += stats.invocations
            if stats.max_message_bits > mine.max_message_bits:
                mine.max_message_bits = stats.max_message_bits

    def summary(self) -> str:
        """Human-readable multi-line summary used by examples and benches."""
        lines = [
            f"rounds={self.rounds} messages={self.messages} "
            f"bits={self.bits} max_message_bits={self.max_message_bits}"
        ]
        for name, stats in sorted(self.phases.items()):
            lines.append(
                f"  phase {name}: rounds={stats.rounds} "
                f"messages={stats.messages} bits={stats.bits} "
                f"broadcasts={stats.broadcasts} "
                f"invocations={stats.invocations} "
                f"max_message_bits={stats.max_message_bits}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of the totals and every phase.

        This is the ledger's wire form: run manifests
        (:func:`repro.obs.collect_manifest`) embed it so every trace and
        benchmark sidecar carries the run's full logical cost record.
        """
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "bits": self.bits,
            "max_message_bits": self.max_message_bits,
            "broadcasts": self.broadcasts,
            "phases": {
                name: {
                    "rounds": stats.rounds,
                    "messages": stats.messages,
                    "bits": stats.bits,
                    "max_message_bits": stats.max_message_bits,
                    "broadcasts": stats.broadcasts,
                    "invocations": stats.invocations,
                }
                for name, stats in sorted(self.phases.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostLedger(rounds={self.rounds}, messages={self.messages})"


def ensure_ledger(ledger: Optional[CostLedger]) -> CostLedger:
    """Return ``ledger`` or a fresh one when ``None`` was passed."""
    return ledger if ledger is not None else CostLedger()
