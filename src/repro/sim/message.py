"""Message envelopes and payload bit accounting.

The CONGEST model bounds messages to ``O(log n)`` bits, so the simulator
needs a concrete notion of how many bits a payload occupies.  We use the
standard information-theoretic encoding cost: an integer ``x`` drawn from a
known range costs ``bit_length(x)`` bits (at least one), a sequence costs
the sum of its elements plus a small length header, and ``None`` is free.

Algorithms may also declare the exact bit size of a payload explicitly
(e.g. "a color from a space of size C costs ceil(log2 C) bits") via the
``bits`` argument of :meth:`RoundContext.send`; the estimator below is the
fallback for payloads that do not declare a size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

#: Bits charged per sequence for its length header.
_LENGTH_HEADER_BITS = 8


def int_bits(value: int) -> int:
    """Number of bits to encode the non-negative integer ``value``.

    Zero still costs one bit.  Negative integers cost one sign bit extra.
    """
    if value == 0:
        return 1
    sign = 1 if value < 0 else 0
    return abs(value).bit_length() + sign


def color_bits(color_space_size: int) -> int:
    """Bits needed for one color out of a space of ``color_space_size``."""
    if color_space_size <= 1:
        return 1
    return int(math.ceil(math.log2(color_space_size)))


def payload_bits(payload: Any) -> int:
    """Estimate the encoding size of ``payload`` in bits.

    Supports ``None``, ``bool``, ``int``, ``str``, and (nested) sequences,
    sets and dicts of those.  Unknown objects are charged a conservative
    64 bits so forgetting to declare a size never *under*-counts by much.
    """
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return int_bits(payload)
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _LENGTH_HEADER_BITS + sum(payload_bits(item) for item in payload)
    if isinstance(payload, dict):
        return _LENGTH_HEADER_BITS + sum(
            payload_bits(key) + payload_bits(value)
            for key, value in payload.items()
        )
    return 64


@dataclass(frozen=True)
class Message:
    """A single point-to-point message delivered at the next round.

    Attributes
    ----------
    sender, receiver:
        Node identifiers; ``receiver`` must be a neighbor of ``sender``.
    tag:
        A short protocol-defined label used to multiplex logical channels
        (e.g. ``"sublist"`` vs ``"final-color"``).
    payload:
        Arbitrary (picklable, read-only by convention) content.
    bits:
        Declared size of the payload in bits; if ``None`` the estimator
        :func:`payload_bits` is used.
    """

    sender: Hashable
    receiver: Hashable
    tag: str
    payload: Any = None
    bits: Optional[int] = field(default=None, compare=False)
    #: Memoized :attr:`size_bits`; payloads are read-only by convention,
    #: so the estimator runs at most once per message.
    _size_cache: Optional[int] = field(
        default=None, compare=False, repr=False, init=False
    )

    @property
    def size_bits(self) -> int:
        """The size charged against the CONGEST budget for this message."""
        bits = self.bits
        if bits is not None:
            # Declared sizes are already O(1); caching would only add an
            # object.__setattr__ per message.
            return bits
        cached = self._size_cache
        if cached is None:
            cached = payload_bits(self.payload)
            object.__setattr__(self, "_size_cache", cached)
        return cached
