"""Message envelopes and payload bit accounting.

The CONGEST model bounds messages to ``O(log n)`` bits, so the simulator
needs a concrete notion of how many bits a payload occupies.  We use the
standard information-theoretic encoding cost: an integer ``x`` drawn from a
known range costs ``bit_length(x)`` bits (at least one), a sequence costs
the sum of its elements plus a small length header, and ``None`` is free.

Algorithms may also declare the exact bit size of a payload explicitly
(e.g. "a color from a space of size C costs ceil(log2 C) bits") via the
``bits`` argument of :meth:`RoundContext.send`; the estimator below is the
fallback for payloads that do not declare a size.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

#: Bits charged per sequence for its length header.
_LENGTH_HEADER_BITS = 8

#: ``REPRO_SIM_CACHE=0`` disables every process-level memo table in the
#: repository (this module's payload tables and the substrate caches in
#: :mod:`repro.substrates.cache`).  Read once at import: the knob selects
#: a process configuration, not a per-call mode.
CACHE_ENV = "REPRO_SIM_CACHE"

_memo_enabled = os.environ.get(CACHE_ENV, "1") != "0"

#: Safety valve so pathological workloads (millions of distinct payloads)
#: cannot grow the memo tables without bound.
_MEMO_LIMIT = 1 << 16

#: ``(type, value) -> bits`` for hashable payloads.  Keyed by type as
#: well as value because ``True == 1`` but costs a different number of
#: bits than the integer it compares equal to.
_payload_bits_memo: Dict[Tuple[type, Any], int] = {}

#: ``(type, value) -> canonical object`` interning table; see
#: :func:`intern_payload`.
_intern_table: Dict[Tuple[type, Any], Any] = {}

#: ``(sender, tag, payload type, payload, bits) -> Broadcast`` envelope
#: interning table; see :func:`intern_broadcast`.
_broadcast_table: Dict[Tuple[Any, ...], "Broadcast"] = {}


def payload_memo_enabled() -> bool:
    """Whether the payload memo/interning tables are active."""
    return _memo_enabled


def set_payload_memo_enabled(enabled: bool) -> bool:
    """Toggle the memo tables (tests only); returns the previous state."""
    global _memo_enabled
    previous = _memo_enabled
    _memo_enabled = bool(enabled)
    if not enabled:
        clear_payload_memo()
    return previous


def clear_payload_memo() -> None:
    """Drop every memoized payload size and interned payload/envelope."""
    _payload_bits_memo.clear()
    _intern_table.clear()
    _broadcast_table.clear()


def intern_payload(payload: Any) -> Any:
    """Return a canonical instance of ``payload`` when it is hashable.

    Protocols send the same few payloads over and over (a color, a small
    tuple of colors, a defect value); interning maps every structurally
    equal payload to one shared object so downstream identity-based
    caches -- the :func:`payload_bits` memo, envelope size caches --
    stay warm across senders, rounds, and trials.  Unhashable payloads
    are returned unchanged.
    """
    if payload is None or not _memo_enabled:
        return payload
    try:
        key = (payload.__class__, payload)
        cached = _intern_table.get(key)
        if cached is not None:
            return cached
        if len(_intern_table) >= _MEMO_LIMIT:
            _intern_table.clear()
        _intern_table[key] = payload
    except TypeError:  # unhashable: lists, dicts, sets
        pass
    return payload


def int_bits(value: int) -> int:
    """Number of bits to encode the non-negative integer ``value``.

    Zero still costs one bit.  Negative integers cost one sign bit extra.
    """
    if value == 0:
        return 1
    sign = 1 if value < 0 else 0
    return abs(value).bit_length() + sign


def color_bits(color_space_size: int) -> int:
    """Bits needed for one color out of a space of ``color_space_size``."""
    if color_space_size <= 1:
        return 1
    return int(math.ceil(math.log2(color_space_size)))


def payload_bits(payload: Any) -> int:
    """Estimate the encoding size of ``payload`` in bits.

    Supports ``None``, ``bool``, ``int``, ``str``, and (nested) sequences,
    sets and dicts of those.  Unknown objects are charged a conservative
    64 bits so forgetting to declare a size never *under*-counts by much.

    Hashable payloads are memoized process-wide (disable with
    ``REPRO_SIM_CACHE=0``): broadcast-heavy protocols re-send the same
    colors and defect vectors every round, so each distinct payload is
    sized exactly once.
    """
    if payload is None:
        return 0
    if _memo_enabled:
        try:
            key = (payload.__class__, payload)
            cached = _payload_bits_memo.get(key)
            if cached is not None:
                return cached
        except TypeError:  # unhashable: estimate without the memo
            key = None
        bits = _estimate_payload_bits(payload)
        if key is not None:
            if len(_payload_bits_memo) >= _MEMO_LIMIT:
                _payload_bits_memo.clear()
            _payload_bits_memo[key] = bits
        return bits
    return _estimate_payload_bits(payload)


def _estimate_payload_bits(payload: Any) -> int:
    """The raw (memo-free) information-theoretic estimator."""
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return int_bits(payload)
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _LENGTH_HEADER_BITS + sum(payload_bits(item) for item in payload)
    if isinstance(payload, dict):
        return _LENGTH_HEADER_BITS + sum(
            payload_bits(key) + payload_bits(value)
            for key, value in payload.items()
        )
    return 64


@dataclass(frozen=True)
class Message:
    """A single point-to-point message delivered at the next round.

    Attributes
    ----------
    sender, receiver:
        Node identifiers; ``receiver`` must be a neighbor of ``sender``.
    tag:
        A short protocol-defined label used to multiplex logical channels
        (e.g. ``"sublist"`` vs ``"final-color"``).
    payload:
        Arbitrary (picklable, read-only by convention) content.
    bits:
        Declared size of the payload in bits; if ``None`` the estimator
        :func:`payload_bits` is used.
    """

    sender: Hashable
    receiver: Hashable
    tag: str
    payload: Any = None
    bits: Optional[int] = field(default=None, compare=False)
    #: Memoized :attr:`size_bits`; payloads are read-only by convention,
    #: so the estimator runs at most once per message.
    _size_cache: Optional[int] = field(
        default=None, compare=False, repr=False, init=False
    )

    @property
    def size_bits(self) -> int:
        """The size charged against the CONGEST budget for this message."""
        bits = self.bits
        if bits is not None:
            # Declared sizes are already O(1); caching would only add an
            # object.__setattr__ per message.
            return bits
        cached = self._size_cache
        if cached is None:
            cached = payload_bits(self.payload)
            object.__setattr__(self, "_size_cache", cached)
        return cached


class Broadcast:
    """One shared envelope for a same-payload send to every neighbor.

    :meth:`RoundContext.broadcast` queues a single ``Broadcast`` instead
    of one :class:`Message` per neighbor; the scheduler fans it out to
    each of the sender's neighbors *by reference*.  Semantically it is
    exactly equivalent to ``degree`` identical point-to-point messages:
    each copy is charged to the ledger and checked against the bandwidth
    model, and each receiver finds the envelope in its inbox with the
    usual ``sender`` / ``tag`` / ``payload`` fields.

    Because every copy is identical, accounting is analytic (``count *
    size_bits`` bits, one bandwidth check stands for all copies) and no
    per-edge allocation happens on the fast engine's hot path.  One
    envelope is constructed per *broadcast call*, so construction itself
    is on the hot path: a plain ``__slots__`` class (read-only by the
    same convention as payloads) beats a frozen dataclass here.

    ``receiver`` is ``None``: an inbox consumer is, by construction, the
    receiver of every envelope it reads.
    """

    __slots__ = ("sender", "tag", "payload", "bits", "_size_cache")

    #: Broadcast envelopes have no single receiver; kept as a class
    #: attribute so bandwidth errors can format uniformly.
    receiver = None

    def __init__(self, sender: Hashable, tag: str, payload: Any = None,
                 bits: Optional[int] = None):
        self.sender = sender
        self.tag = tag
        self.payload = payload
        self.bits = bits
        self._size_cache = bits

    @property
    def size_bits(self) -> int:
        """Per-copy size charged against the CONGEST budget."""
        cached = self._size_cache
        if cached is None:
            cached = self._size_cache = payload_bits(self.payload)
        return cached

    def __eq__(self, other: Any) -> bool:
        # Mirrors Message equality: declared bits and size caches are
        # transport metadata, not message content.
        if other.__class__ is not Broadcast:
            return NotImplemented
        return (self.sender == other.sender and self.tag == other.tag
                and self.payload == other.payload)

    def __hash__(self) -> int:
        return hash((Broadcast, self.sender, self.tag, self.payload))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Broadcast(sender={self.sender!r}, tag={self.tag!r}, "
                f"payload={self.payload!r}, bits={self.bits!r})")


def intern_broadcast(sender: Hashable, tag: str, payload: Any = None,
                     bits: Optional[int] = None) -> Broadcast:
    """A canonical :class:`Broadcast` for ``(sender, tag, payload, bits)``.

    Protocols that re-broadcast an identical message every round (keep-
    alives, repeated color announcements) get the *same* envelope object
    back, eliding even the one-per-call construction and keeping its
    ``_size_cache`` warm across rounds.  Envelopes are read-only by the
    same convention as payloads, so sharing across rounds is safe.

    The key includes the payload's type (``True == 1`` but encodes
    differently) and the declared ``bits`` (the same payload may be sent
    under different declared sizes).  Unhashable payloads, and runs with
    ``REPRO_SIM_CACHE=0``, get a fresh envelope per call.
    """
    if _memo_enabled:
        try:
            key = (sender, tag, payload.__class__, payload, bits)
            envelope = _broadcast_table.get(key)
            if envelope is not None:
                return envelope
            if len(_broadcast_table) >= _MEMO_LIMIT:
                _broadcast_table.clear()
            if bits is None:
                payload = intern_payload(payload)
            envelope = Broadcast(sender, tag, payload, bits)
            _broadcast_table[key] = envelope
            return envelope
        except TypeError:  # unhashable payload (or sender)
            pass
    if bits is None:
        payload = intern_payload(payload)
    return Broadcast(sender, tag, payload, bits)
