"""Synchronous message-passing round simulator (LOCAL and CONGEST)."""

from .congest import BandwidthModel, CongestModel, LocalModel
from .errors import (
    AlgorithmFailure,
    BandwidthExceeded,
    InfeasibleInstanceError,
    InstanceError,
    NetworkError,
    RoundLimitExceeded,
    SchedulerError,
    SimulationError,
)
from .message import Message, color_bits, int_bits, payload_bits
from .metrics import CostLedger, PhaseStats, ensure_ledger
from .network import Network
from .node import NodeProgram, RoundContext
from .scheduler import DEFAULT_MAX_ROUNDS, Scheduler, run_protocol
from .tracing import RoundObserver, RoundRecord

__all__ = [
    "AlgorithmFailure",
    "BandwidthExceeded",
    "BandwidthModel",
    "CongestModel",
    "CostLedger",
    "DEFAULT_MAX_ROUNDS",
    "InfeasibleInstanceError",
    "InstanceError",
    "LocalModel",
    "Message",
    "Network",
    "NetworkError",
    "NodeProgram",
    "PhaseStats",
    "RoundContext",
    "RoundLimitExceeded",
    "RoundObserver",
    "RoundRecord",
    "Scheduler",
    "SchedulerError",
    "SimulationError",
    "color_bits",
    "ensure_ledger",
    "int_bits",
    "payload_bits",
    "run_protocol",
]
