"""Synchronous message-passing round simulator (LOCAL and CONGEST)."""

from .compiled import CompiledNetwork
from .congest import BandwidthModel, CongestModel, LocalModel
from .errors import (
    AlgorithmFailure,
    BandwidthExceeded,
    InfeasibleInstanceError,
    InstanceError,
    NetworkError,
    RoundLimitExceeded,
    SchedulerError,
    SimulationError,
)
from .kernels import (
    KernelRound,
    KernelStats,
    RoundKernel,
    kernel_for,
    kernel_stats,
    register_kernel,
    registered_kernels,
    reset_kernel_stats,
    unregister_kernel,
)
from .message import (
    Broadcast,
    Message,
    clear_payload_memo,
    color_bits,
    int_bits,
    intern_broadcast,
    intern_payload,
    payload_bits,
)
from .metrics import CostLedger, PhaseStats, ensure_ledger
from .network import Network
from .node import NodeProgram, RoundContext
from .parallel import (
    PoolUnavailable,
    SweepReport,
    WorkerPool,
    derive_seed,
    parallel_sweep,
    run_trials,
)
from . import shm
from .scheduler import (
    DEFAULT_MAX_ROUNDS,
    ENGINES,
    Scheduler,
    default_engine,
    run_protocol,
    set_default_engine,
    use_engine,
)
from .tracing import RoundObserver, RoundRecord, expand_pairs

__all__ = [
    "AlgorithmFailure",
    "BandwidthExceeded",
    "BandwidthModel",
    "Broadcast",
    "CompiledNetwork",
    "CongestModel",
    "CostLedger",
    "DEFAULT_MAX_ROUNDS",
    "ENGINES",
    "InfeasibleInstanceError",
    "InstanceError",
    "KernelRound",
    "KernelStats",
    "LocalModel",
    "Message",
    "Network",
    "NetworkError",
    "NodeProgram",
    "PhaseStats",
    "RoundContext",
    "RoundKernel",
    "RoundLimitExceeded",
    "RoundObserver",
    "RoundRecord",
    "Scheduler",
    "SchedulerError",
    "SimulationError",
    "PoolUnavailable",
    "SweepReport",
    "WorkerPool",
    "clear_payload_memo",
    "color_bits",
    "default_engine",
    "derive_seed",
    "ensure_ledger",
    "expand_pairs",
    "int_bits",
    "intern_broadcast",
    "intern_payload",
    "kernel_for",
    "kernel_stats",
    "parallel_sweep",
    "payload_bits",
    "register_kernel",
    "registered_kernels",
    "reset_kernel_stats",
    "run_protocol",
    "run_trials",
    "set_default_engine",
    "shm",
    "unregister_kernel",
    "use_engine",
]
