"""Optional NumPy backend for the vectorized round kernels.

The vectorized engine's :class:`~repro.sim.kernels.RoundKernel` columns
are plain Python lists by default -- portable, dependency-free, and fast
enough for the broadcast/sweep kernels whose per-round work is O(active
nodes).  The algebraic recoloring kernel is different: every node
evaluates a degree-``k`` polynomial over ``F_m`` at all ``m`` points and
scans its rivals' evaluation rows, so each round is a dense ``(n, m)``
numeric workload -- exactly what an ndarray backend batches well.

This module is the single switch point for that backend:

* **selection** -- NumPy importable *and* ``REPRO_SIM_ARRAYS`` unset or
  not ``"0"`` means kernels may take the array path; otherwise they keep
  their pure-Python columns.  The choice is transparent: results,
  ledgers, exception order, and trace streams are bit-identical either
  way (the equivalence suite runs the full matrix under both backends);
* **overflow safety** -- the batched Horner accumulator holds values
  below ``m**2`` and colors below ``q``, so the array path is only taken
  when both fit comfortably in ``int64`` (:data:`MAX_FIELD`,
  :data:`MAX_COLOR`); fields beyond that fall back to pure Python, whose
  integers never overflow;
* **helpers** -- batched modular Horner evaluation of a
  :class:`~repro.substrates.cover_free.PolynomialFamily` and the small
  sort/bincount-style neighbor-color tallies shared by the greedy-sweep
  and color-reduction kernels.

Process-pool workers inherit the parent's *resolved* decision via
:func:`set_arrays_override` (shipped through ``_init_worker`` initargs),
mirroring how the engine choice is frozen at pool creation.
"""

from __future__ import annotations

import os
from typing import Any, Optional

#: Environment switch: ``REPRO_SIM_ARRAYS=0`` disables the NumPy backend
#: even when NumPy is importable.  Re-read on every decision (like
#: ``REPRO_SIM_ENGINE``) so tests and operators can flip it mid-process.
ARRAYS_ENV = "REPRO_SIM_ARRAYS"

#: Environment knob: ``REPRO_SIM_CHUNK=<nodes>`` bounds how many nodes a
#: vectorized kernel round materializes at once.  The dense per-round
#: temporaries (an ``(n, m)`` evaluation matrix for the algebraic
#: kernel) become ``(chunk, m)``, keeping peak RSS flat as n grows.
#: Chunked execution is bit-identical to unchunked -- the chunks are
#: pure index slices of the same gathers and reductions -- so this is a
#: memory knob, never a semantics knob.  Unset, ``0``, or unparsable
#: means "off" (whole-population rounds, the historical behavior).
CHUNK_ENV = "REPRO_SIM_CHUNK"

#: Largest field size ``m`` the int64 Horner path accepts.  The
#: accumulator peaks at ``(m - 1) * (m - 1) + (m - 1) < m**2``, and the
#: flattened pair color is ``x * m + value < m**2``, so ``m <= 2**31``
#: keeps every intermediate below ``2**62``.
MAX_FIELD = 1 << 31

#: Largest color index the int64 column path accepts.
MAX_COLOR = (1 << 62) - 1

#: Kernels skip the array path for populations smaller than this: a
#: handful of ndarray round-trips costs more than a short Python loop.
#: Tests monkeypatch this to 0 to force the array path on tiny graphs.
MIN_BATCH = 32

#: Per-node tally helpers fall back to plain loops below this many
#: elements (neighbor row length + candidate list length).  The fixed
#: per-call cost of fancy-indexing + searchsorted/bincount is ~10-30us,
#: so a single decider's tally only beats the tight Python dict loop
#: once its row runs to a few hundred elements (measured crossover
#: ~256-512 on CPython 3.12); below that the loop wins by 3-10x.
MIN_TALLY = 512

#: Cap on ``edges * m`` for the dense conflict matrix; populations whose
#: worst-case match matrix would exceed this many int64 elements decline
#: the array path rather than risk an allocation blow-up.
MAX_MATCH_ELEMENTS = 1 << 25

_UNSET = object()
_numpy_module: Any = _UNSET
_override: Optional[bool] = None


def _import_numpy() -> Optional[Any]:
    """Import NumPy once per process; ``None`` when unavailable."""
    global _numpy_module
    if _numpy_module is _UNSET:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


def get_numpy() -> Optional[Any]:
    """The NumPy module when the array backend is enabled, else ``None``.

    ``None`` means "use the pure-Python columns": NumPy is not
    importable, ``REPRO_SIM_ARRAYS=0`` is set, or a worker-side override
    (:func:`set_arrays_override`) disables it.
    """
    if _override is False:
        return None
    if _override is None and os.environ.get(ARRAYS_ENV, "1") == "0":
        return None
    return _import_numpy()


def arrays_enabled() -> bool:
    """Whether kernels may take the NumPy array path right now."""
    return get_numpy() is not None


def set_arrays_override(enabled: Optional[bool]) -> Optional[bool]:
    """Force the backend decision (``None`` restores env-based selection).

    Process-pool workers receive the parent's resolved decision through
    this hook so a mid-sweep environment change cannot split a sweep
    across backends; tests use it to pin one backend.  Returns the
    previous override.
    """
    global _override
    previous = _override
    _override = None if enabled is None else bool(enabled)
    return previous


def numpy_version() -> Optional[str]:
    """The active NumPy version string, or ``None`` when falling back."""
    np = get_numpy()
    return getattr(np, "__version__", None) if np is not None else None


def backend_name() -> str:
    """``"numpy"`` or ``"python"`` -- the backend new kernels would pick."""
    return "numpy" if arrays_enabled() else "python"


def _reset_import_cache() -> None:
    """Forget the import probe (tests simulate NumPy absence)."""
    global _numpy_module
    _numpy_module = _UNSET


def chunk_size() -> int:
    """The configured node-chunk bound; ``0`` disables chunking.

    Re-read from ``REPRO_SIM_CHUNK`` on every call (kernels freeze the
    value at ``prepare`` time so one run never mixes granularities).
    """
    raw = os.environ.get(CHUNK_ENV, "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    return value if value > 0 else 0


def iter_chunks(total: int, chunk: int):
    """Yield ``(lo, hi)`` node ranges covering ``0..total``.

    One whole-range pair when ``chunk`` is 0 (chunking off) or already
    covers the population.
    """
    if total <= 0:
        return
    if chunk <= 0 or chunk >= total:
        yield (0, total)
        return
    for lo in range(0, total, chunk):
        yield (lo, min(lo + chunk, total))


# ----------------------------------------------------------------------
# Batched modular Horner over F_m
# ----------------------------------------------------------------------
def field_fits(m: int, q: int) -> bool:
    """Whether ``(q, m)`` is safe for the int64 Horner path."""
    return 2 <= m <= MAX_FIELD and 0 < q <= MAX_COLOR


def coefficient_matrix(np, indices, m: int, k: int):
    """Base-``m`` digit rows of ``indices`` -- shape ``(len, k + 1)``.

    Row ``r`` holds the coefficients of polynomial ``indices[r]`` with
    the constant coefficient first, exactly matching
    ``PolynomialFamily.coefficients``.
    """
    value = np.asarray(indices, dtype=np.int64)
    coefficients = np.empty((value.shape[0], k + 1), dtype=np.int64)
    for j in range(k + 1):
        coefficients[:, j] = value % m
        value = value // m
    return coefficients


def batched_horner(np, indices, m: int, k: int):
    """Evaluation rows ``P_index(x)`` for ``x = 0..m-1``.

    Returns an ``(len(indices), m)`` int64 matrix; row ``r`` equals
    ``tuple(family.evaluate(indices[r], x) for x in range(m))`` for the
    ``(q, m, k)`` family.  Callers guarantee ``0 <= index < q`` and
    :func:`field_fits` -- every intermediate then stays below ``2**62``.
    """
    coefficients = coefficient_matrix(np, indices, m, k)
    points = np.arange(m, dtype=np.int64)
    acc = np.zeros((coefficients.shape[0], m), dtype=np.int64)
    for j in range(k, -1, -1):
        acc *= points
        acc += coefficients[:, j:j + 1]
        acc %= m
    return acc


# ----------------------------------------------------------------------
# Neighbor-color tallies (greedy sweep / color reduction / two-sweep)
# ----------------------------------------------------------------------
def membership_counts(np, values, sorted_candidates):
    """How often each of ``sorted_candidates`` occurs in ``values``.

    ``sorted_candidates`` must be strictly increasing; the result aligns
    with it.  This is the sort-based tally behind the list-defective
    feasibility probes: ``counts[c] = |{v in values : v == candidate c}|``.
    """
    size = sorted_candidates.shape[0]
    if size == 0 or values.shape[0] == 0:
        return np.zeros(size, dtype=np.int64)
    positions = np.searchsorted(sorted_candidates, values)
    positions = np.minimum(positions, size - 1)
    hits = sorted_candidates[positions] == values
    return np.bincount(positions[hits], minlength=size).astype(np.int64)


def mex_below(np, values, limit: int) -> int:
    """The minimum excluded value of ``values``, saturated at ``limit``.

    Returns the smallest non-negative integer not present in ``values``
    when that integer is below ``limit``, else ``limit`` (callers treat
    saturation as "no free color below the target").  Values outside
    ``[0, limit)`` cannot be a mex candidate and are ignored.
    """
    present = np.zeros(limit + 1, dtype=bool)
    clipped = np.where(
        (values < 0) | (values > limit), limit, values
    )
    present[clipped] = True
    free = np.flatnonzero(~present[:limit])
    return int(free[0]) if free.shape[0] else limit
