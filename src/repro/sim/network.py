"""Static network topologies for the round simulator.

A :class:`Network` is an undirected communication graph: nodes exchange
messages along its edges in synchronous rounds.  Directed *inputs* (the
edge orientations used by oriented list defective coloring) live in
:mod:`repro.graphs.oriented`; communication is always bidirectional, as in
the paper's model ("even if G is a directed graph, we assume that
communication can happen in both directions").
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from .compiled import CompiledNetwork
from .errors import NetworkError

Node = Hashable


class Network:
    """An immutable undirected graph with O(1) neighbor lookups."""

    def __init__(self, adjacency: Mapping[Node, Iterable[Node]]):
        """Build a network from an adjacency mapping.

        The mapping must be symmetric (if ``v in adjacency[u]`` then
        ``u in adjacency[v]``) and free of self-loops; violations raise
        :class:`NetworkError`.
        """
        adj: Dict[Node, Tuple[Node, ...]] = {}
        for node, neighbors in adjacency.items():
            unique = tuple(dict.fromkeys(neighbors))
            adj[node] = unique
        for node, neighbors in adj.items():
            for neighbor in neighbors:
                if neighbor == node:
                    raise NetworkError(f"self-loop at node {node!r}")
                if neighbor not in adj:
                    raise NetworkError(
                        f"edge {node!r}-{neighbor!r} references unknown node"
                    )
                if node not in adj[neighbor]:
                    raise NetworkError(
                        f"asymmetric adjacency: {node!r} lists {neighbor!r} "
                        f"but not vice versa"
                    )
        self._adj = adj
        self._neighbor_sets = {
            node: frozenset(neighbors) for node, neighbors in adj.items()
        }
        # Lazily computed caches; safe because the topology is immutable.
        self._compiled: Optional[CompiledNetwork] = None
        self._raw_max_degree: Optional[int] = None
        self._edge_count: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, nodes: Iterable[Node],
                   edges: Iterable[Tuple[Node, Node]]) -> "Network":
        """Build a network from a node list and an undirected edge list."""
        adjacency: Dict[Node, list] = {node: [] for node in nodes}
        for u, v in edges:
            if u not in adjacency or v not in adjacency:
                raise NetworkError(f"edge ({u!r}, {v!r}) references unknown node")
            if v not in adjacency[u]:
                adjacency[u].append(v)
            if u not in adjacency[v]:
                adjacency[v].append(u)
        return cls(adjacency)

    @classmethod
    def from_networkx(cls, graph) -> "Network":
        """Build a network from a ``networkx.Graph``."""
        return cls.from_edges(graph.nodes(), graph.edges())

    def to_networkx(self):
        """Export as a ``networkx.Graph`` (nodes and edges only)."""
        import networkx

        graph = networkx.Graph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges())
        return graph

    def subgraph(self, nodes: Iterable[Node]) -> "Network":
        """The induced subnetwork on ``nodes``."""
        keep = set(nodes)
        unknown = keep - set(self._adj)
        if unknown:
            raise NetworkError(f"unknown nodes in subgraph request: {unknown}")
        return Network({
            node: [u for u in self._adj[node] if u in keep] for node in keep
        })

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """The node's neighbors, in insertion order."""
        try:
            return self._adj[node]
        except KeyError:
            raise NetworkError(f"unknown node {node!r}") from None

    def neighbor_set(self, node: Node) -> frozenset:
        """The node's neighbors as a frozenset (O(1) membership)."""
        try:
            return self._neighbor_sets[node]
        except KeyError:
            raise NetworkError(f"unknown node {node!r}") from None

    def has_edge(self, u: Node, v: Node) -> bool:
        """True iff ``{u, v}`` is an edge."""
        return v in self._neighbor_sets.get(u, frozenset())

    def degree(self, node: Node) -> int:
        """The node's degree."""
        return len(self.neighbors(node))

    def max_degree(self) -> int:
        """Maximum degree, but at least 2 (the paper's Delta(G) convention)."""
        return max(2, self.raw_max_degree())

    def raw_max_degree(self) -> int:
        """Maximum degree without the paper's floor of 2."""
        if self._raw_max_degree is None:
            self._raw_max_degree = max(
                (len(nbrs) for nbrs in self._adj.values()), default=0
            )
        return self._raw_max_degree

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Each undirected edge exactly once (u listed before v by id order).

        Dedup is by insertion-order position: the edge is emitted at its
        first-seen endpoint, so no per-edge set of frozensets is built.
        """
        if self._compiled is not None:
            pos = self._compiled.index
        else:
            pos = {node: i for i, node in enumerate(self._adj)}
        for node, neighbors in self._adj.items():
            here = pos[node]
            for neighbor in neighbors:
                if here < pos[neighbor]:
                    yield (node, neighbor)

    def edge_count(self) -> int:
        """The number of undirected edges."""
        if self._edge_count is None:
            self._edge_count = (
                sum(len(nbrs) for nbrs in self._adj.values()) // 2
            )
        return self._edge_count

    def compile(self) -> CompiledNetwork:
        """The dense-id / CSR view of this network, built once and cached."""
        if self._compiled is None:
            self._compiled = CompiledNetwork.from_network(self)
        return self._compiled

    def __repr__(self) -> str:
        return (
            f"Network(n={len(self._adj)}, m={self.edge_count()}, "
            f"Delta={self.raw_max_degree()})"
        )
