"""Round-level observation of protocol runs.

A :class:`RoundObserver` attached to a scheduler records, per round, how
many messages of each tag crossed the network and which nodes were
active.  It powers the timeline rendering in examples and gives tests a
way to assert *when* something happened, not only that it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

Node = Hashable


def expand_pairs(messages: Iterable) -> Iterator:
    """Expand a scheduler message feed to one envelope per delivered copy.

    The fast engine hands observers ``(envelope, copies)`` pairs --
    a broadcast to ``d`` neighbors is one pair, not ``d`` list entries --
    while the reference engine hands plain envelopes.  This generator
    normalizes either form to the per-copy stream, for consumers that
    really do want one item per delivery.
    """
    for item in messages:
        if type(item) is tuple:
            envelope, copies = item
            for _ in range(copies):
                yield envelope
        else:
            yield item


@dataclass
class RoundRecord:
    """What happened in one synchronous round."""

    round_number: int
    messages_by_tag: Dict[str, int] = field(default_factory=dict)
    senders: Tuple[Node, ...] = ()
    halted: Tuple[Node, ...] = ()

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_tag.values())


class RoundObserver:
    """Collects a :class:`RoundRecord` per executed round."""

    def __init__(self) -> None:
        self.records: List[RoundRecord] = []

    def on_round(self, round_number: int, messages, halted) -> None:
        """Called by the scheduler after each round.

        ``messages``: the round's sent messages -- either plain envelopes
        (reference engine) or ``(envelope, copies)`` pairs (fast engine,
        which never materializes per-copy records); ``halted``: nodes
        that halted this round.  Both feeds aggregate identically.
        """
        by_tag: Dict[str, int] = {}
        senders = []
        for message in messages:
            # Envelopes are never tuples, so the pair form is
            # unambiguous.
            if type(message) is tuple:
                message, copies = message
            else:
                copies = 1
            by_tag[message.tag] = by_tag.get(message.tag, 0) + copies
            senders.append(message.sender)
        self.records.append(RoundRecord(
            round_number=round_number,
            messages_by_tag=by_tag,
            senders=tuple(dict.fromkeys(senders)),
            halted=tuple(halted),
        ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rounds(self) -> int:
        return len(self.records)

    def first_round_with_tag(self, tag: str) -> int:
        """1-based round number of the first message with ``tag`` (-1 if
        the tag never appears)."""
        for record in self.records:
            if record.messages_by_tag.get(tag):
                return record.round_number
        return -1

    def tag_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self.records:
            for tag, count in record.messages_by_tag.items():
                totals[tag] = totals.get(tag, 0) + count
        return totals

    def quiet_rounds(self) -> int:
        """Rounds in which no message was sent."""
        return sum(
            1 for record in self.records if record.total_messages == 0
        )

    def timeline(self, width: int = 60) -> str:
        """A compact ASCII activity timeline (one char per round)."""
        if not self.records:
            return "(no rounds)"
        peak = max(record.total_messages for record in self.records) or 1
        levels = " .:-=+*#"
        chars = []
        for record in self.records:
            index = round(
                (len(levels) - 1) * record.total_messages / peak
            )
            chars.append(levels[index])
        text = "".join(chars)
        lines = [
            text[i:i + width] for i in range(0, len(text), width)
        ]
        return "\n".join(lines)
