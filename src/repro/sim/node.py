"""Node programs: the local code executed by every vertex each round.

A :class:`NodeProgram` sees only what the model allows it to see: its own
identifier and input, its neighbor list, and the messages delivered this
round.  The scheduler (:mod:`repro.sim.scheduler`) drives all programs in
lock step; a program signals completion with :meth:`RoundContext.halt`.

Protocols in this repository follow a common shape -- "iterate over the q
initial color classes, class c acts in round c" -- so the context exposes
the current round number to keep those programs simple.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .message import Message

Node = Hashable


class RoundContext:
    """Per-node, per-round view handed to :meth:`NodeProgram.on_round`."""

    # One instance per node per round -- slots keep the allocation cheap.
    __slots__ = ("node", "neighbors", "round_number", "inbox", "outbox",
                 "halted")

    def __init__(self, node: Node, neighbors: Tuple[Node, ...],
                 round_number: int, inbox: Tuple[Message, ...]):
        self.node = node
        self.neighbors = neighbors
        self.round_number = round_number
        self.inbox = inbox
        self.outbox: List[Message] = []
        self.halted = False

    def send(self, receiver: Node, tag: str, payload: Any = None,
             bits: Optional[int] = None) -> None:
        """Queue a message for delivery at the start of the next round."""
        self.outbox.append(Message(self.node, receiver, tag, payload, bits))

    def broadcast(self, tag: str, payload: Any = None,
                  bits: Optional[int] = None) -> None:
        """Send the same message to every neighbor."""
        for neighbor in self.neighbors:
            self.send(neighbor, tag, payload, bits)

    def received(self, tag: str) -> Dict[Node, Any]:
        """Payloads of this round's messages with ``tag``, keyed by sender."""
        return {
            message.sender: message.payload
            for message in self.inbox
            if message.tag == tag
        }

    def halt(self) -> None:
        """Mark this node as finished.

        A halted node stops being scheduled but still *receives* nothing --
        protocols must be written so no one sends to a halted node expecting
        a reply.  Messages queued in the same round are still delivered.
        """
        self.halted = True


class NodeProgram(ABC):
    """Abstract local program; one instance runs per node.

    Subclasses keep all their state on ``self`` -- the scheduler never
    inspects it -- and must only read the information exposed through the
    :class:`RoundContext` to preserve the locality discipline.
    """

    @abstractmethod
    def on_round(self, ctx: RoundContext) -> None:
        """Execute one synchronous round.

        Called with the messages delivered this round in ``ctx.inbox``;
        messages queued via ``ctx.send`` are delivered next round.
        """

    def output(self) -> Any:
        """The node's final output after halting (protocol specific)."""
        return None
