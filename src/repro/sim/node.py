"""Node programs: the local code executed by every vertex each round.

A :class:`NodeProgram` sees only what the model allows it to see: its own
identifier and input, its neighbor list, and the messages delivered this
round.  The scheduler (:mod:`repro.sim.scheduler`) drives all programs in
lock step; a program signals completion with :meth:`RoundContext.halt`.

Protocols in this repository follow a common shape -- "iterate over the q
initial color classes, class c acts in round c" -- so the context exposes
the current round number to keep those programs simple.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

from .message import Broadcast, Message, intern_broadcast

Node = Hashable

#: What a program may queue in one round: point-to-point messages and
#: shared broadcast envelopes, processed by the scheduler in queue order.
Envelope = Union[Message, Broadcast]


class RoundContext:
    """Per-node, per-round view handed to :meth:`NodeProgram.on_round`.

    A context is owned by the scheduler and **only valid for the
    duration of the** :meth:`NodeProgram.on_round` **call it is passed
    to**: engines may recycle one instance across nodes and rounds, so
    programs must not store the context (or its ``outbox``) and must
    copy anything from ``inbox`` they want to keep beyond the call.
    """

    __slots__ = ("node", "neighbors", "round_number", "inbox", "outbox",
                 "halted")

    def __init__(self, node: Node, neighbors: Tuple[Node, ...],
                 round_number: int, inbox: Tuple[Envelope, ...]):
        self.node = node
        self.neighbors = neighbors
        self.round_number = round_number
        self.inbox = inbox
        self.outbox: List[Envelope] = []
        self.halted = False

    def send(self, receiver: Node, tag: str, payload: Any = None,
             bits: Optional[int] = None) -> None:
        """Queue a message for delivery at the start of the next round."""
        self.outbox.append(Message(self.node, receiver, tag, payload, bits))

    def broadcast(self, tag: str, payload: Any = None,
                  bits: Optional[int] = None) -> None:
        """Send the same message to every neighbor.

        Queues **one** shared :class:`Broadcast` envelope; the scheduler
        fans it out to every neighbor by reference and charges each copy
        as if it were an individual :meth:`send`.  The envelope itself is
        interned: re-broadcasting the same ``(tag, payload, bits)`` in a
        later round reuses one canonical, sized-once envelope (disable
        with ``REPRO_SIM_CACHE=0``).
        """
        if not self.neighbors:
            return
        self.outbox.append(intern_broadcast(self.node, tag, payload, bits))

    def received(self, tag: str) -> Dict[Node, Any]:
        """Payloads of this round's messages with ``tag``, keyed by sender."""
        return {
            message.sender: message.payload
            for message in self.inbox
            if message.tag == tag
        }

    def halt(self) -> None:
        """Mark this node as finished.

        A halted node stops being scheduled but still *receives* nothing --
        protocols must be written so no one sends to a halted node expecting
        a reply.  Messages queued in the same round are still delivered.
        """
        self.halted = True


class NodeProgram(ABC):
    """Abstract local program; one instance runs per node.

    Subclasses keep all their state on ``self`` -- the scheduler never
    inspects it -- and must only read the information exposed through the
    :class:`RoundContext` to preserve the locality discipline.
    """

    @abstractmethod
    def on_round(self, ctx: RoundContext) -> None:
        """Execute one synchronous round.

        Called with the messages delivered this round in ``ctx.inbox``;
        messages queued via ``ctx.send`` are delivered next round.
        """

    def output(self) -> Any:
        """The node's final output after halting (protocol specific)."""
        return None
