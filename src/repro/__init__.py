"""repro: a reproduction of "Simpler and More General Distributed Coloring
Based on Simple List Defective Coloring Algorithms" (Fuchs & Kuhn, PODC'24).

The package is organized bottom-up:

* :mod:`repro.sim` -- a synchronous message-passing round simulator with
  LOCAL and CONGEST bandwidth models and composable cost accounting;
* :mod:`repro.graphs` -- graph generators, edge orientations, hypergraphs,
  line graphs and neighborhood independence;
* :mod:`repro.coloring` -- list (arb)defective coloring instances, slack
  arithmetic, and independent validators;
* :mod:`repro.substrates` -- the classic algorithms the paper builds on
  (Linial [Lin87], the defective coloring of Lemma 3.4 [Kuh09, KS18],
  greedy baselines, prior-work resource envelopes);
* :mod:`repro.core` -- the paper's contributions: the Two-Sweep family
  (Theorems 1.1-1.3) and the bounded-neighborhood-independence recursion
  (Theorems 1.4-1.5 with Lemmas 4.4-4.6 and A.1);
* :mod:`repro.analysis` -- experiment harness and table rendering;
* :mod:`repro.obs` -- run telemetry: structured tracing, phase
  wall-clock profiling, and run manifests (engine-agnostic; the logical
  trace stream is part of the engine-equivalence contract).

Quick start::

    from repro import graphs, coloring, core

    net = graphs.gnp_graph(60, 0.1, seed=1)
    graph = graphs.orient_by_id(net)
    ids = graphs.sequential_ids(net)
    instance = coloring.random_oldc_instance(graph, p=3, seed=2)
    result = core.two_sweep(instance, ids, q=len(net), p=3)
    assert not coloring.check_oldc(instance, result.colors)
"""

from . import analysis, coloring, core, graphs, obs, sim, substrates

__version__ = "1.2.0"

__all__ = [
    "analysis",
    "coloring",
    "core",
    "graphs",
    "obs",
    "sim",
    "substrates",
    "__version__",
]
